"""Unit and round-trip tests for the PeerTrust parser."""

import pytest
from hypothesis import given, strategies as st

from repro.datalog.ast import Literal, Rule
from repro.datalog.parser import (
    parse_goals,
    parse_literal,
    parse_program,
    parse_rule,
    parse_term,
)
from repro.datalog.terms import Compound, Constant, Variable
from repro.errors import ParseError


class TestTerms:
    def test_atom(self):
        assert parse_term("cs101") == Constant("cs101")

    def test_string(self):
        assert parse_term('"E-Learn"') == Constant("E-Learn", quoted=True)

    def test_integer_and_float(self):
        assert parse_term("42") == Constant(42)
        assert parse_term("2.5") == Constant(2.5)

    def test_negative_number_folds(self):
        assert parse_term("-3") == Constant(-3)

    def test_variable(self):
        assert parse_term("Course") == Variable("Course")

    def test_compound(self):
        term = parse_term("price(cs411, 1000)")
        assert isinstance(term, Compound)
        assert term.functor == "price" and term.arity == 2

    def test_nested_compound(self):
        term = parse_term("f(g(X), h(1, 2))")
        assert isinstance(term, Compound) and term.arity == 2

    def test_arithmetic_precedence(self):
        term = parse_term("1 + 2 * 3")
        assert isinstance(term, Compound)
        assert term.functor == "+"
        assert isinstance(term.args[1], Compound) and term.args[1].functor == "*"

    def test_parenthesised_expression(self):
        term = parse_term("(1 + 2) * 3")
        assert isinstance(term, Compound) and term.functor == "*"

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_term("a b")


class TestLiterals:
    def test_plain(self):
        literal = parse_literal("freeCourse(cs101)")
        assert literal.predicate == "freeCourse" and literal.arity == 1

    def test_zero_arity(self):
        assert parse_literal("ping").indicator == ("ping", 0)

    def test_authority_chain_order(self):
        literal = parse_literal('student(X) @ "UIUC" @ X')
        assert [str(a) for a in literal.authority] == ['"UIUC"', "X"]
        assert str(literal.evaluation_target) == "X"

    def test_comparison(self):
        literal = parse_literal("Price < 2000")
        assert literal.predicate == "<" and literal.is_comparison

    def test_equality_literal(self):
        literal = parse_literal("Requester = Party")
        assert literal.predicate == "="

    def test_negation(self):
        literal = parse_literal("not revokedCard(X)")
        assert literal.negated
        assert literal.positive().negated is False

    def test_double_negation_rejected(self):
        with pytest.raises(ParseError):
            parse_literal("not not p(X)")

    def test_arithmetic_in_comparison(self):
        literal = parse_literal("Balance + Price <= Limit")
        assert literal.predicate == "<="
        assert isinstance(literal.args[0], Compound)


class TestRules:
    def test_fact(self):
        rule = parse_rule("freeCourse(cs101).")
        assert rule.is_fact and rule.guard is None and rule.rule_context is None

    def test_rule_with_body(self):
        rule = parse_rule("a(X) <- b(X), c(X).")
        assert len(rule.body) == 2

    def test_prolog_arrow_synonym(self):
        assert parse_rule("a(X) :- b(X).") == parse_rule("a(X) <- b(X).")

    def test_guard_true_is_empty_tuple(self):
        rule = parse_rule("r(X) $ true <- b(X).")
        assert rule.guard == () and rule.is_release_policy

    def test_guard_goals(self):
        rule = parse_rule('c(X) @ Y $ m(Requester) @ "BBB" @ Requester <-{true} c(X) @ Y.')
        assert rule.guard is not None and len(rule.guard) == 1
        assert rule.rule_context == ()

    def test_guard_comparison(self):
        rule = parse_rule("d(C, P) $ Requester = P <- d(C, P).")
        assert rule.guard is not None and rule.guard[0].predicate == "="

    def test_rule_context_absent_is_none(self):
        assert parse_rule("a(X) <- b(X).").rule_context is None

    def test_rule_context_goals(self):
        rule = parse_rule("a(X) <-{m(Requester)} b(X).")
        assert rule.rule_context is not None
        assert rule.rule_context[0].predicate == "m"

    def test_signed_fact(self):
        rule = parse_rule('member("E-Learn") @ "BBB" signedBy ["BBB"].')
        assert rule.is_signed and str(rule.signers[0]) == '"BBB"'

    def test_signed_rule_after_arrow(self):
        rule = parse_rule(
            'student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "UIUC Registrar".')
        assert rule.is_signed and len(rule.body) == 1

    def test_signed_rule_with_comparison_body(self):
        rule = parse_rule(
            'authorized("Bob", Price) @ "IBM" <- signedBy ["IBM"] Price < 2000.')
        assert rule.is_signed and rule.body[0].predicate == "<"

    def test_multiple_signers(self):
        rule = parse_rule('a(X) signedBy ["A", "B"].')
        assert len(rule.signers) == 2

    def test_duplicate_signed_by_rejected(self):
        with pytest.raises(ParseError):
            parse_rule('a(X) signedBy ["A"] <- signedBy ["B"] b(X).')

    def test_negated_head_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("not a(X) <- b(X).")

    def test_comparison_head_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("X < 2 <- b(X).")

    def test_missing_dot_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("a(X) <- b(X)")

    def test_empty_body_via_true(self):
        rule = parse_rule("a(X) <- true.")
        assert rule.body == () and not rule.is_fact or rule.is_fact
        # `a(X) <- true.` has an empty body: it is a fact-shaped rule
        assert rule.body == ()

    def test_true_as_functor_still_parses(self):
        rule = parse_rule("a(X) <- true(X).")
        assert rule.body[0].predicate == "true"


class TestPrograms:
    def test_multiple_rules(self):
        program = parse_program("a(1). a(2). b(X) <- a(X).")
        assert len(program) == 3

    def test_comments_between_rules(self):
        program = parse_program("% catalogue\na(1).\n/* more */\na(2).")
        assert len(program) == 2

    def test_empty_program(self):
        assert parse_program("") == []

    def test_error_reports_line(self):
        with pytest.raises(ParseError) as info:
            parse_program("a(1).\nb(2\n.")
        assert info.value.line in (2, 3)


class TestGoals:
    def test_true_is_empty_conjunction(self):
        assert parse_goals("true") == ()

    def test_conjunction(self):
        goals = parse_goals("a(X), X < 3, not b(X)")
        assert [g.predicate for g in goals] == ["a", "<", "b"]


PAPER_RULES = [
    'discountEnroll(Course, Party) $ Requester = Party <- discountEnroll(Course, Party).',
    'eligibleForDiscount(X, Course) <- preferred(X) @ "ELENA".',
    'preferred(X) @ "ELENA" <- signedBy ["ELENA"] student(X) @ "UIUC".',
    'student(X) @ University <- student(X) @ University @ X.',
    'member("E-Learn") @ "BBB" signedBy ["BBB"].',
    'freeEnroll(Course, Requester) $ true <- policeOfficer(Requester) @ "CSP" @ Requester, spanishCourse(Course).',
    'student(X) @ Y $ member(Requester) @ "BBB" @ Requester <-{true} student(X) @ Y.',
    'authorized("Bob", Price) @ X $ member(Requester) @ "ELENA" <-{true} authorized("Bob", Price) @ X.',
    'visaCard("IBM") signedBy ["VISA"].',
    'policy27(Requester) <- authorizedMerchant(Requester) @ "VISA" @ Requester, member(Requester) @ "ELENA".',
    'enroll(Course, Requester, Company, Email, 0) <-{true} freeCourse(Course), freebieEligible(Course, Requester, Company, Email).',
    'policy49(Course, Requester, Company, Price) <-{true} price(Course, Price), authorized(Requester, Price) @ Company @ Requester, visaCard(Company) @ "VISA" @ Requester, purchaseApproved(Company, Price) @ "VISA".',
    'policy49(C, R, Co, P) <-{true} authority(purchaseApproved, Authority) @ myBroker, purchaseApproved(Co, P) @ Authority.',
]


@pytest.mark.parametrize("source", PAPER_RULES)
def test_every_paper_rule_parses(source):
    rule = parse_rule(source)
    assert isinstance(rule, Rule)


@pytest.mark.parametrize("source", PAPER_RULES)
def test_paper_rules_round_trip(source):
    """str(rule) must re-parse to an equal rule."""
    rule = parse_rule(source)
    assert parse_rule(str(rule)) == rule


# -- generative round trip ---------------------------------------------------

_atoms = st.sampled_from(["a", "bb", "cs101", "price"])
_variables = st.sampled_from(["X", "Y", "Course", "Requester"])
_strings = st.sampled_from(["UIUC", "E-Learn", "a b"])


@st.composite
def literals(draw):
    predicate = draw(_atoms)
    arity = draw(st.integers(0, 3))
    args = tuple(
        draw(st.one_of(
            _atoms.map(lambda a: Constant(a)),
            _variables.map(Variable),
            _strings.map(lambda s: Constant(s, quoted=True)),
            st.integers(0, 99).map(Constant),
        ))
        for _ in range(arity)
    )
    chain_length = draw(st.integers(0, 2))
    authority = tuple(
        draw(st.one_of(_strings.map(lambda s: Constant(s, quoted=True)),
                       _variables.map(Variable)))
        for _ in range(chain_length)
    )
    return Literal(predicate, args, authority)


@st.composite
def rules(draw):
    head = draw(literals())
    body = tuple(draw(st.lists(literals(), max_size=3)))
    guard = draw(st.one_of(st.none(), st.lists(literals(), max_size=2).map(tuple)))
    context = draw(st.one_of(st.none(), st.just(())))
    signers = tuple(draw(st.lists(
        _strings.map(lambda s: Constant(s, quoted=True)), max_size=2)))
    return Rule(head, body, guard, context, signers)


@given(rules())
def test_property_rule_rendering_round_trips(rule):
    assert parse_rule(str(rule)) == rule
