"""Certified proofs, access tokens, and audit-trail tests."""

import dataclasses

import pytest

from repro.crypto.keys import KeyRing, keypair_for
from repro.datalog.parser import parse_literal, parse_rule
from repro.errors import (
    CredentialError,
    ExpiredCredentialError,
    ProofError,
    SignatureError,
)
from repro.negotiation.audit import AuditTrail
from repro.negotiation.proof import CertifiedProof, proof_from_tree, verify_proof
from repro.negotiation.tokens import issue_token, verify_token
from repro.world import World

KEY_BITS = 512


@pytest.fixture
def student_proof():
    """A delegation-chain proof package and the matching key ring."""
    world = World(key_bits=KEY_BITS)
    holder = world.add_peer("Alice")
    world.issuer("UIUC")
    world.issuer("Registrar")
    world.distribute_keys()
    credentials = world.give_credentials("Alice", '''
        student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "Registrar".
        student("Alice") @ "Registrar" signedBy ["Registrar"].
    ''')
    goal = parse_literal('student("Alice") @ "UIUC"')
    proof = CertifiedProof(goal, tuple(credentials), assembled_by="Alice")
    return proof, holder.keyring


class TestCertifiedProofs:
    def test_verify_rederives(self, student_proof):
        proof, ring = student_proof
        tree = verify_proof(proof, ring)
        assert tree is not None

    def test_missing_credential_fails(self, student_proof):
        proof, ring = student_proof
        incomplete = dataclasses.replace(proof, credentials=proof.credentials[:1])
        with pytest.raises(ProofError):
            verify_proof(incomplete, ring)

    def test_tampered_credential_fails(self, student_proof):
        proof, ring = student_proof
        victim = proof.credentials[1]
        forged_rule = parse_rule(
            'student("Mallory") @ "Registrar" signedBy ["Registrar"].')
        forged = dataclasses.replace(victim, rule=forged_rule)
        with pytest.raises(ProofError):
            verify_proof(dataclasses.replace(
                proof, credentials=(proof.credentials[0], forged)), ring)

    def test_unknown_issuer_fails(self, student_proof):
        proof, _ = student_proof
        with pytest.raises(ProofError):
            verify_proof(proof, KeyRing())

    def test_wrong_goal_fails(self, student_proof):
        proof, ring = student_proof
        wrong = dataclasses.replace(
            proof, goal=parse_literal('student("Mallory") @ "UIUC"'))
        with pytest.raises(ProofError):
            verify_proof(wrong, ring)

    def test_vouching_layer_dropped(self, student_proof):
        proof, ring = student_proof
        vouched = dataclasses.replace(
            proof,
            goal=parse_literal('student("Alice") @ "UIUC" @ "Alice"'),
            vouching_peer="Alice")
        assert verify_proof(vouched, ring) is not None

    def test_vouching_layer_not_droppable_for_other_peer(self, student_proof):
        proof, ring = student_proof
        wrong = dataclasses.replace(
            proof,
            goal=parse_literal('student("Alice") @ "UIUC" @ "Mallory"'),
            vouching_peer="Alice")
        with pytest.raises(ProofError):
            verify_proof(wrong, ring)

    def test_proof_from_tree_collects_credentials(self):
        world = World(key_bits=KEY_BITS)
        holder = world.add_peer("Holder")
        world.issuer("CA")
        world.distribute_keys()
        world.give_credentials("Holder", 'c("v") signedBy ["CA"].')
        from repro.negotiation.engine import EvalContext
        from repro.negotiation.session import Session

        ctx = EvalContext(holder, Session("s", "H"), "H", holder.kb,
                          [holder.credentials], allow_remote=False)
        solution = ctx.query_goal(parse_literal('c("v") @ "CA"'))[0]
        proof = proof_from_tree(parse_literal('c("v") @ "CA"'),
                                solution.proofs[0], "Holder")
        assert len(proof.credentials) == 1
        assert proof.serials()

    def test_revoked_credential_in_proof_fails(self, student_proof):
        from repro.credentials.revocation import RevocationList

        proof, ring = student_proof
        crl = RevocationList("Registrar", keypair_for("Registrar", KEY_BITS))
        crl.revoke(proof.credentials[1].serial)
        with pytest.raises(ProofError):
            verify_proof(proof, ring, [crl])


class TestTokens:
    @pytest.fixture
    def issuer(self):
        return keypair_for("E-Learn", KEY_BITS)

    @pytest.fixture
    def ring(self, issuer):
        ring = KeyRing()
        ring.add(issuer.public)
        return ring

    def test_issue_and_verify(self, issuer, ring):
        token = issue_token(issuer, parse_literal("enroll(cs101)"), "Alice",
                            issued_at=0.0, ttl=100.0)
        verify_token(token, "Alice", ring, now=50.0)

    def test_non_transferable(self, issuer, ring):
        token = issue_token(issuer, parse_literal("enroll(cs101)"), "Alice")
        with pytest.raises(CredentialError):
            verify_token(token, "Mallory", ring)

    def test_expiry(self, issuer, ring):
        token = issue_token(issuer, parse_literal("enroll(cs101)"), "Alice",
                            issued_at=0.0, ttl=10.0)
        with pytest.raises(ExpiredCredentialError):
            verify_token(token, "Alice", ring, now=20.0)

    def test_no_ttl_never_expires(self, issuer, ring):
        token = issue_token(issuer, parse_literal("enroll(cs101)"), "Alice")
        verify_token(token, "Alice", ring, now=1e12)

    def test_tampered_resource_detected(self, issuer, ring):
        token = issue_token(issuer, parse_literal("enroll(cs101)"), "Alice")
        forged = dataclasses.replace(token, resource=parse_literal("enroll(cs999)"))
        with pytest.raises(SignatureError):
            verify_token(forged, "Alice", ring)

    def test_revoked_serial_rejected(self, issuer, ring):
        token = issue_token(issuer, parse_literal("enroll(cs101)"), "Alice")
        with pytest.raises(CredentialError):
            verify_token(token, "Alice", ring, revoked_serials={token.serial})


class TestAudit:
    def test_record_and_filter(self):
        trail = AuditTrail("E-Learn")
        trail.record("s1", "granted", "Alice", "discountEnroll")
        trail.record("s1", "denied", "Mallory", "freeEnroll")
        trail.record("s2", "granted", "Bob", "enroll")
        assert trail.count("granted") == 2
        assert len(list(trail.records(subject="Alice"))) == 1
        assert len(list(trail.records(session_id="s1"))) == 2
        assert len(trail) == 3

    def test_sequence_monotonic(self):
        trail = AuditTrail("X")
        first = trail.record("s", "a", "p")
        second = trail.record("s", "b", "q")
        assert second.sequence > first.sequence

    def test_render(self):
        trail = AuditTrail("X")
        entry = trail.record("s9", "granted", "Alice", "resource")
        assert "granted" in str(entry) and "s9" in str(entry)
