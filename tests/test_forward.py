"""Distributed forward-chaining semantics vs the negotiation engine.

Soundness: whatever a negotiation grants must be derivable in the §3.2
saturation.  Completeness bound: a goal underivable in the saturation is
never granted.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.parser import parse_literal
from repro.negotiation.forward import distributed_fixpoint
from repro.scenarios.elearn import build_scenario1, run_discount_negotiation
from repro.scenarios.services import build_scenario2, run_free_enrollment
from repro.workloads.generator import (
    build_alternating_chain,
    build_cyclic_release,
    build_delegation_chain,
    build_random_bilateral,
)
from repro.workloads.metrics import measure_negotiation

KEY_BITS = 512


class TestScenarioAgreement:
    def test_scenario1_saturation_derives_grant(self):
        scenario = build_scenario1(key_bits=KEY_BITS)
        saturation = distributed_fixpoint(scenario.world)
        assert saturation.derivable(
            "E-Learn", parse_literal('discountEnroll(spanish205, "Alice")'))
        # And the negotiation agrees.
        assert run_discount_negotiation(build_scenario1(key_bits=KEY_BITS)).granted

    def test_scenario1_initiator_hears_grant(self):
        scenario = build_scenario1(key_bits=KEY_BITS)
        saturation = distributed_fixpoint(scenario.world)
        assert saturation.derivable(
            "Alice",
            parse_literal('discountEnroll(spanish205, "Alice") @ "E-Learn"'))

    def test_scenario2_free_course(self):
        scenario = build_scenario2(key_bits=KEY_BITS)
        saturation = distributed_fixpoint(scenario.world)
        assert saturation.derivable(
            "E-Learn",
            parse_literal('enroll(cs101, "Bob", "IBM", "Bob@ibm.com", 0)'))

    def test_scenario2_counterfactual_underivable(self):
        scenario = build_scenario2(key_bits=KEY_BITS, ibm_in_elena=False)
        saturation = distributed_fixpoint(scenario.world)
        assert not saturation.derivable(
            "E-Learn",
            parse_literal('enroll(cs101, "Bob", "IBM", "Bob@ibm.com", 0)'))


class TestWorkloadAgreement:
    def test_delegation_chain(self):
        workload = build_delegation_chain(3, key_bits=KEY_BITS)
        saturation = distributed_fixpoint(workload.world)
        assert saturation.derivable("Server", parse_literal('resource("Client")'))

    def test_cyclic_release_underivable_and_never_granted(self):
        workload = build_cyclic_release(key_bits=KEY_BITS)
        saturation = distributed_fixpoint(workload.world)
        assert not saturation.derivable("Server", parse_literal('resource("Client")'))
        assert not measure_negotiation(workload)[0].granted

    def test_alternating_chain(self):
        workload = build_alternating_chain(3, key_bits=KEY_BITS)
        saturation = distributed_fixpoint(workload.world)
        assert saturation.derivable("Server", parse_literal('resource("Client")'))

    @given(st.integers(0, 5_000))
    @settings(max_examples=10, deadline=None)
    def test_property_negotiation_sound_wrt_saturation(self, seed):
        """granted(goal) ⇒ saturation derives goal at the provider."""
        workload = build_random_bilateral(seed, key_bits=KEY_BITS)
        result, _ = measure_negotiation(workload)
        saturation = distributed_fixpoint(workload.world)
        derivable = saturation.derivable("Server", workload.goal)
        if result.granted:
            assert derivable
        if not derivable:
            assert not result.granted


class TestFixpointMechanics:
    def test_rounds_and_sends_reported(self):
        scenario = build_scenario1(key_bits=KEY_BITS)
        saturation = distributed_fixpoint(scenario.world)
        assert saturation.rounds >= 2 and saturation.sends > 0

    def test_facts_of_lists_peer_state(self):
        scenario = build_scenario1(key_bits=KEY_BITS)
        saturation = distributed_fixpoint(scenario.world)
        alice_facts = saturation.facts_of("Alice")
        assert any(f.predicate == "student" for f in alice_facts)

    def test_subset_of_peers(self):
        scenario = build_scenario1(key_bits=KEY_BITS)
        saturation = distributed_fixpoint(scenario.world, peers=["Alice"])
        assert "E-Learn" not in saturation.states

    def test_nonconvergence_guard(self):
        from repro.errors import EvaluationError
        from repro.world import World

        world = World(key_bits=KEY_BITS)
        world.add_peer("P", "grow(z). grow(s(X)) <- grow(X).")
        with pytest.raises(EvaluationError):
            distributed_fixpoint(world, max_rounds=5)
