"""Composed ELENA-network integration tests (every substrate at once)."""

import pytest

from repro.datalog.parser import parse_literal
from repro.negotiation.strategies import negotiate
from repro.negotiation.tokens import verify_token
from repro.scenarios.elena_network import (
    build_elena_network,
    enroll_everywhere,
)

KEY_BITS = 512

ALICE_COURSES = {"E-Learn": "spanish205", "EduSoft": "python101",
                 "UniCourses": "logic300"}
BOB_COURSES = {"E-Learn": "cs411", "EduSoft": "ml500",
               "UniCourses": "logic300"}


@pytest.fixture(scope="module")
def network():
    return build_elena_network(key_bits=KEY_BITS)


class TestDiscovery:
    def test_providers_found_via_routing_index(self, network):
        found = network.superpeers.locate("enroll")
        assert set(found) == {"E-Learn", "EduSoft", "UniCourses"}

    def test_visa_advertised(self, network):
        assert network.superpeers.locate("purchaseApproved") == ["VISA"]

    def test_broker_resolves_billing_authority(self, network):
        assert network.broker.authorities_for("purchaseApproved") == ["VISA"]


class TestAliceOutcomes:
    def test_enrollments(self, network):
        outcomes = {o.provider: o for o in
                    enroll_everywhere(network, network.alice, ALICE_COURSES)}
        # Student path: free E-Learn course via delegation chain + consortium.
        assert outcomes["E-Learn"].granted
        # Open teaser: anyone.
        assert outcomes["UniCourses"].granted
        # Employer-paid provider: Alice has no authorisation credential.
        assert not outcomes["EduSoft"].granted

    def test_tokens_verify_at_their_providers(self, network):
        outcomes = enroll_everywhere(network, network.alice, ALICE_COURSES)
        for outcome in outcomes:
            if not outcome.granted:
                assert outcome.token is None
                continue
            provider = network.providers[outcome.provider]
            verify_token(outcome.token, presenter="Alice",
                         keyring=provider.keyring, now=10.0)

    def test_alice_guard_fires_membership_counterquery(self, network):
        """Alice's release policy demands the requester's ELENA membership,
        which E-Learn proves with its consortium credential."""
        result = negotiate(network.alice, "E-Learn",
                           parse_literal('enroll(spanish205, "Alice")'))
        assert result.granted
        queries = [e for e in result.session.events("query")
                   if e.actor == "Alice" and "ELENA" in e.detail]
        # Either a live counter-query happened, or evidence from an earlier
        # module-scoped negotiation satisfied it silently; in a fresh session
        # the first enrollment in this module already exercised it.
        assert result.session.counters["release_checks"] >= 1


class TestBobOutcomes:
    def test_enrollments(self, network):
        outcomes = {o.provider: o for o in
                    enroll_everywhere(network, network.bob, BOB_COURSES)}
        assert outcomes["E-Learn"].granted      # brokered VISA billing
        assert outcomes["EduSoft"].granted      # employer authorisation
        assert outcomes["UniCourses"].granted   # open

    def test_brokered_billing_path_visible(self, network):
        result = negotiate(network.bob, "E-Learn",
                           parse_literal('enroll(cs411, "Bob")'))
        assert result.granted
        queries = [e for e in result.session.events("query")]
        assert any(e.counterpart == "myBroker" for e in queries)
        assert any(e.counterpart == "VISA" for e in queries)

    def test_over_limit_purchase_fails(self, network):
        # ml500 costs 1500 < 2000 ok; forge a dearer goal at EduSoft:
        network.providers["EduSoft"].kb.load("price(phd999, 99999).")
        result = negotiate(network.bob, "EduSoft",
                           parse_literal('enroll(phd999, "Bob")'))
        assert not result.granted


class TestTopologyAccounting:
    def test_all_traffic_routed_through_superpeers(self, network):
        network.superpeers.reset_hop_log()
        enroll_everywhere(network, network.bob, BOB_COURSES)
        assert network.superpeers.total_hops() > 0

    def test_rdf_catalogue_queryable(self, network):
        provider = network.providers["E-Learn"]
        solutions = provider.local_query(parse_literal("price(C, 0)"),
                                         allow_remote=False)
        assert any(str(s.binding("C")) == "spanish205" for s in solutions)
