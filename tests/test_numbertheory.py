"""Number-theory primitive tests."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.numbertheory import (
    extended_gcd,
    is_probable_prime,
    modular_inverse,
    random_prime,
    random_prime_pair,
)
from repro.errors import CryptoError

SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 101, 7919, 104729]
SMALL_COMPOSITES = [1, 0, 4, 9, 15, 100, 7917, 104730, 561, 41041]  # incl. Carmichael


class TestExtendedGcd:
    def test_bezout_identity(self):
        g, x, y = extended_gcd(240, 46)
        assert g == 2 and 240 * x + 46 * y == g

    def test_coprime(self):
        g, _, _ = extended_gcd(17, 31)
        assert g == 1

    def test_zero_cases(self):
        assert extended_gcd(0, 5)[0] == 5
        assert extended_gcd(5, 0)[0] == 5


class TestModularInverse:
    def test_inverse_roundtrip(self):
        inverse = modular_inverse(3, 11)
        assert (3 * inverse) % 11 == 1

    def test_no_inverse_raises(self):
        with pytest.raises(CryptoError):
            modular_inverse(6, 9)

    @given(st.integers(2, 10_000))
    def test_property_inverse_mod_prime(self, value):
        prime = 104729
        inverse = modular_inverse(value, prime)
        assert (value * inverse) % prime == 1


class TestMillerRabin:
    @pytest.mark.parametrize("prime", SMALL_PRIMES)
    def test_primes_accepted(self, prime):
        assert is_probable_prime(prime)

    @pytest.mark.parametrize("composite", SMALL_COMPOSITES)
    def test_composites_rejected(self, composite):
        assert not is_probable_prime(composite)

    def test_large_known_prime(self):
        assert is_probable_prime(2 ** 127 - 1)  # Mersenne

    def test_large_known_composite(self):
        assert not is_probable_prime(2 ** 128 + 1)

    @given(st.integers(2, 1000))
    def test_property_agrees_with_trial_division(self, n):
        def trial(n):
            if n < 2:
                return False
            return all(n % d for d in range(2, int(n ** 0.5) + 1))

        assert is_probable_prime(n) == trial(n)


class TestPrimeGeneration:
    def test_exact_bit_length(self):
        prime = random_prime(64)
        assert prime.bit_length() == 64
        assert is_probable_prime(prime)

    def test_prime_is_odd(self):
        assert random_prime(32) % 2 == 1

    def test_pair_is_distinct(self):
        p, q = random_prime_pair(48)
        assert p != q and is_probable_prime(p) and is_probable_prime(q)

    def test_tiny_bits_rejected(self):
        with pytest.raises(CryptoError):
            random_prime(4)
