"""End-to-end access-token flow (§3.1's repeat-access mechanism)."""

import pytest

from repro.datalog.parser import parse_literal
from repro.errors import CredentialError, ExpiredCredentialError
from repro.negotiation.strategies import negotiate
from repro.negotiation.tokens import issue_token, verify_token
from repro.world import World

KEY_BITS = 512


@pytest.fixture
def granted_world():
    world = World(key_bits=KEY_BITS)
    server = world.add_peer("Server",
                            'resource(Requester) $ true <- '
                            'pass(Requester) @ "CA" @ Requester.')
    client = world.add_peer("Client",
                            'pass(X) @ Y $ true <-{true} pass(X) @ Y.')
    world.issuer("CA")
    world.distribute_keys()
    world.give_credentials("Client", 'pass("Client") signedBy ["CA"].')
    result = negotiate(client, "Server", parse_literal('resource("Client")'))
    assert result.granted
    return world, server, client, result


class TestTokenAfterNegotiation:
    def test_provider_issues_token_on_grant(self, granted_world):
        world, server, client, result = granted_world
        token = issue_token(server.keys, result.answered_literal,
                            holder=client.name, issued_at=0.0, ttl=3600.0)
        # Later access: the client presents the token instead of negotiating.
        verify_token(token, presenter=client.name, keyring=server.keyring,
                     now=100.0)

    def test_token_skips_renegotiation_traffic(self, granted_world):
        world, server, client, result = granted_world
        token = issue_token(server.keys, result.answered_literal,
                            holder=client.name)
        world.reset_metrics()
        verify_token(token, presenter=client.name, keyring=server.keyring)
        assert world.stats.messages == 0  # purely local check

    def test_token_not_transferable_to_other_peer(self, granted_world):
        world, server, client, result = granted_world
        mallory = world.add_peer("Mallory")
        token = issue_token(server.keys, result.answered_literal,
                            holder=client.name)
        with pytest.raises(CredentialError):
            verify_token(token, presenter="Mallory", keyring=server.keyring)

    def test_expired_token_forces_renegotiation(self, granted_world):
        world, server, client, result = granted_world
        token = issue_token(server.keys, result.answered_literal,
                            holder=client.name, issued_at=0.0, ttl=10.0)
        with pytest.raises(ExpiredCredentialError):
            verify_token(token, presenter=client.name,
                         keyring=server.keyring, now=100.0)
        # ...and renegotiation still works.
        again = negotiate(client, "Server", parse_literal('resource("Client")'))
        assert again.granted

    def test_audit_trail_records_grant_and_token(self, granted_world):
        from repro.negotiation.audit import AuditTrail

        world, server, client, result = granted_world
        trail = AuditTrail(server.name)
        trail.record(result.session.id, "granted", client.name,
                     str(result.answered_literal))
        token = issue_token(server.keys, result.answered_literal,
                            holder=client.name)
        trail.record(result.session.id, "token-issued", client.name,
                     token.serial[:12])
        assert trail.count("granted") == 1
        assert trail.count("token-issued") == 1
