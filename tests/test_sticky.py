"""Sticky-policy tests (§3.1 optional mechanism).

Topology: Origin holds a CA-signed credential whose release policy guard is
``clearance(Requester)``.  Middle satisfies it, receives the credential,
and is later asked to forward it.  With sticky policies on, Middle (a
cooperative peer) re-checks the origin's guard for each new recipient;
with them off, the received statement travels freely (contexts stripped on
send, the base paper's behaviour).
"""

import pytest

from repro.datalog.parser import parse_literal
from repro.negotiation.strategies import negotiate
from repro.policy.sticky import (
    combined_sticky_guard,
    sticky_obligations,
    with_sticky_guard,
)
from repro.world import World

KEY_BITS = 512

ORIGIN_PROGRAM = """
secret(X) @ Y $ clearance(Requester) <-{true} secret(X) @ Y.
clearance("Middle").
"""

# Middle re-serves the secret; its own policy is permissive ($ true), so
# only the sticky guard can restrict onward flow.
MIDDLE_PROGRAM = """
relay(Requester) $ true <- secret("data") @ "CA".
secret(X) @ Y $ true <-{true} secret(X) @ Y.
clearance("Endpoint").
"""


def build(sticky: bool):
    world = World(key_bits=KEY_BITS)
    origin = world.add_peer("Origin", ORIGIN_PROGRAM, sticky_policies=sticky)
    middle = world.add_peer("Middle", MIDDLE_PROGRAM, sticky_policies=sticky)
    endpoint = world.add_peer("Endpoint")
    mallory = world.add_peer("Mallory")
    world.issuer("CA")
    world.distribute_keys()
    world.give_credentials("Origin", 'secret("data") signedBy ["CA"].')
    return world, origin, middle, endpoint, mallory


def fetch_secret_via_middle(world, middle, requester):
    """Requester asks Middle directly for the origin's statement; the
    answer must carry the (possibly sticky) credential."""
    return negotiate(requester, "Middle",
                     parse_literal('secret("data") @ "CA"'))


def fetch_relay_via_middle(world, middle, requester):
    """Requester asks Middle for the derived relay resource (the
    modus-ponens propagation surface)."""
    return negotiate(requester, "Middle",
                     parse_literal(f'relay("{requester.name}")'))


class TestHelpers:
    def test_with_and_read_guard(self, keys_for):
        from repro.credentials.credential import issue_credential
        from repro.datalog.parser import parse_goals, parse_rule

        credential = issue_credential(
            parse_rule('c(1) signedBy ["StickCA"].'), keys_for("StickCA"))
        guarded = with_sticky_guard(credential, parse_goals("clearance(Requester)"))
        assert guarded.sticky_guard is not None
        obligations = sticky_obligations(guarded, "Bob", "Holder")
        assert str(obligations[0]) == 'clearance("Bob")'
        assert sticky_obligations(credential, "Bob", "Holder") is None

    def test_combined_guard_dedups(self, keys_for):
        from repro.credentials.credential import issue_credential
        from repro.datalog.parser import parse_goals, parse_rule

        first = with_sticky_guard(
            issue_credential(parse_rule('c(1) signedBy ["StickCA"].'),
                             keys_for("StickCA")),
            parse_goals("a(Requester), b(Requester)"))
        second = with_sticky_guard(
            issue_credential(parse_rule('c(2) signedBy ["StickCA"].'),
                             keys_for("StickCA")),
            parse_goals("b(Requester), c(Requester)"))
        combined = combined_sticky_guard([first, second])
        assert combined is not None and len(combined) == 3

    def test_combined_none_when_no_guards(self, keys_for):
        from repro.credentials.credential import issue_credential
        from repro.datalog.parser import parse_rule

        plain = issue_credential(parse_rule('c(1) signedBy ["StickCA"].'),
                                 keys_for("StickCA"))
        assert combined_sticky_guard([plain]) is None


class TestAttachment:
    def test_disclosed_credential_carries_guard(self):
        world, origin, middle, endpoint, _ = build(sticky=True)
        result = negotiate(middle, "Origin",
                           parse_literal('secret("data") @ "CA"'))
        assert result.granted
        [credential] = [c for c in result.credentials_received
                        if c.rule.head.predicate == "secret"]
        assert credential.sticky_guard is not None
        assert "clearance" in str(credential.sticky_guard[0])

    def test_no_guard_without_sticky_mode(self):
        world, origin, middle, endpoint, _ = build(sticky=False)
        result = negotiate(middle, "Origin",
                           parse_literal('secret("data") @ "CA"'))
        assert result.granted
        [credential] = [c for c in result.credentials_received
                        if c.rule.head.predicate == "secret"]
        assert credential.sticky_guard is None


class TestForwardingEnforcement:
    def _prime_middle(self, world, middle):
        """Middle obtains the secret from Origin in a prior session and
        keeps it in its wallet (sticky guard intact)."""
        result = negotiate(middle, "Origin",
                           parse_literal('secret("data") @ "CA"'))
        assert result.granted
        middle.adopt_session_credentials(result.session)

    def test_sticky_blocks_unauthorised_onward_flow(self):
        world, origin, middle, endpoint, mallory = build(sticky=True)
        self._prime_middle(world, middle)
        # Endpoint has clearance (Middle's KB knows it): forwarding allowed.
        granted = fetch_secret_via_middle(world, middle, endpoint)
        assert granted.granted
        assert any(c.rule.head.predicate == "secret"
                   for c in granted.credentials_received)
        # Mallory lacks clearance: the sticky guard withholds the credential.
        denied = fetch_secret_via_middle(world, middle, mallory)
        sticky_events = list(denied.session.events("sticky-denied"))
        assert sticky_events
        assert not any(c.rule.head.predicate == "secret"
                       for c in denied.credentials_received)
        assert not denied.granted  # nothing certifiable reached Mallory

    def test_default_mode_forwards_freely(self):
        world, origin, middle, endpoint, mallory = build(sticky=False)
        self._prime_middle(world, middle)
        flowed = fetch_secret_via_middle(world, middle, mallory)
        assert flowed.granted
        assert any(c.rule.head.predicate == "secret"
                   for c in flowed.credentials_received)


class TestModusPonensPropagation:
    def test_answer_credential_inherits_guard(self):
        world, origin, middle, endpoint, _ = build(sticky=True)
        result = negotiate(middle, "Origin",
                           parse_literal('secret("data") @ "CA"'))
        middle.adopt_session_credentials(result.session)
        relayed = fetch_relay_via_middle(world, middle, endpoint)
        assert relayed.granted

    def test_derived_answer_denied_without_clearance(self):
        """Middle's relay answer is *derived from* the sticky credential, so
        even the answer itself (not just the credential) is withheld from an
        uncleared requester."""
        world, origin, middle, endpoint, mallory = build(sticky=True)
        result = negotiate(middle, "Origin",
                           parse_literal('secret("data") @ "CA"'))
        middle.adopt_session_credentials(result.session)
        denied = fetch_relay_via_middle(world, middle, mallory)
        assert not denied.granted
