"""Fault-plan and transport-resilience tests.

Covers the deterministic fault model (seeded drop/duplicate/corrupt/delay,
crash windows, payload tampering), the retry policy (backoff charged to the
simulated clock, idempotent redelivery, exactly-once handler execution),
per-session deadlines, session-table lifecycle, and the failure counters
the negotiation engine records under faults.
"""

import pytest

from repro import World
from repro.credentials.credential import issue_credential, verify_credential
from repro.crypto.keys import KeyRing, keypair_for
from repro.datalog.parser import parse_literal, parse_rule
from repro.errors import (
    DeadlineExceeded,
    MessageTooLargeError,
    PeerUnavailableError,
    SignatureError,
    TransientNetworkError,
)
from repro.net.faults import (
    FaultPlan,
    FaultRule,
    tamper_message,
    tampered_credential,
    uniform_plan,
)
from repro.net.message import AnswerItem, AnswerMessage, QueryMessage
from repro.net.transport import (
    RetryPolicy,
    Transport,
    constant_latency,
    jittered_latency,
)

KEY_BITS = 512


class EchoPeer:
    """Minimal handler that counts how many times it actually executes."""

    def __init__(self, name):
        self.name = name
        self.handled = 0

    def handle(self, message):
        self.handled += 1
        return AnswerMessage(sender=self.name, receiver=message.sender,
                             session_id=message.session_id,
                             query_id=message.message_id, items=())


def query(sender="a", receiver="b", session_id="s1", text="ping"):
    return QueryMessage(sender=sender, receiver=receiver,
                        session_id=session_id, goal=parse_literal(text))


def make_transport(**kwargs):
    transport = Transport(latency=constant_latency(1.0), **kwargs)
    a, b = EchoPeer("a"), EchoPeer("b")
    transport.register(a)
    transport.register(b)
    return transport, a, b


def sample_credential(issuer="FaultCA"):
    keys = keypair_for(issuer, KEY_BITS)
    return keys, issue_credential(
        parse_rule(f'c("X") signedBy ["{issuer}"].'), keys)


# ---------------------------------------------------------------------------
# FaultPlan semantics
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def _decisions(self, plan, messages):
        return [(d.drop, d.duplicate, d.corrupt, d.extra_delay_ms)
                for d in (plan.decide(m, 0.0) for m in messages)]

    def test_same_seed_replays_identically(self):
        messages = [query(text=f"p({i})") for i in range(20)]
        first = uniform_plan(seed=42, drop=0.3, duplicate=0.3, corrupt=0.2,
                             delay_rate=0.5, delay_ms=4.0)
        second = uniform_plan(seed=42, drop=0.3, duplicate=0.3, corrupt=0.2,
                              delay_rate=0.5, delay_ms=4.0)
        assert self._decisions(first, messages) == self._decisions(second, messages)

    def test_different_seeds_diverge(self):
        messages = [query(text=f"p({i})") for i in range(40)]
        first = uniform_plan(seed=1, drop=0.5)
        second = uniform_plan(seed=2, drop=0.5)
        assert self._decisions(first, messages) != self._decisions(second, messages)

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(sender="a", drop=1.0),
            FaultRule(drop=0.0),
        ))
        assert plan.decide(query(sender="a"), 0.0).drop
        assert not plan.decide(query(sender="c", receiver="b"), 0.0).drop

    def test_kind_selector(self):
        plan = FaultPlan(seed=0, rules=(FaultRule(kind="AnswerMessage", drop=1.0),))
        assert not plan.decide(query(), 0.0).drop
        reply = AnswerMessage(sender="b", receiver="a", session_id="s1")
        assert plan.decide(reply, 0.0).drop

    def test_unmatched_message_is_untouched(self):
        plan = FaultPlan(seed=0, rules=(FaultRule(receiver="z", drop=1.0),))
        decision = plan.decide(query(), 0.0)
        assert not (decision.drop or decision.duplicate or decision.corrupt)

    def test_crash_window_boundaries(self):
        plan = FaultPlan().crash("b", 10.0, 20.0)
        assert not plan.is_down("b", 9.9)
        assert plan.is_down("b", 10.0)
        assert plan.is_down("b", 19.9)
        assert not plan.is_down("b", 20.0)  # restarted
        assert not plan.is_down("a", 15.0)

    def test_crash_overrides_rules(self):
        plan = uniform_plan(seed=0).crash("b", 0.0, 5.0)
        decision = plan.decide(query(), 1.0)
        assert decision.drop and decision.crashed
        assert plan.stats["crash_drops"] == 1

    def test_stats_count_injections(self):
        plan = uniform_plan(seed=0, drop=1.0)
        for _ in range(5):
            plan.decide(query(), 0.0)
        assert plan.stats["drops"] == 5

    def test_delay_bounded_by_rule(self):
        plan = uniform_plan(seed=7, delay_rate=1.0, delay_ms=3.0)
        for _ in range(30):
            decision = plan.decide(query(), 0.0)
            assert 0.0 <= decision.extra_delay_ms <= 3.0


class TestTampering:
    def test_tampered_credential_fails_verification(self):
        keys, credential = sample_credential()
        keyring = KeyRing()
        keyring.add(keys.public)
        verify_credential(credential, keyring)  # intact: verifies
        with pytest.raises(SignatureError):
            verify_credential(tampered_credential(credential), keyring)

    def test_tamper_answer_message_damages_one_credential(self):
        keys, credential = sample_credential()
        keyring = KeyRing()
        keyring.add(keys.public)
        reply = AnswerMessage(
            sender="b", receiver="a", session_id="s1",
            items=(AnswerItem(bindings={}, credentials=(credential,)),))
        damaged = tamper_message(reply)
        assert damaged is not None and damaged is not reply
        with pytest.raises(SignatureError):
            verify_credential(damaged.items[0].credentials[0], keyring)
        # The original message is untouched (frozen dataclasses, new copies).
        verify_credential(reply.items[0].credentials[0], keyring)

    def test_untamperable_payloads_return_none(self):
        assert tamper_message(query()) is None
        failure = AnswerMessage(sender="b", receiver="a", session_id="s1")
        assert tamper_message(failure) is None


class TestRetryPolicy:
    def test_backoff_exponential_and_capped(self):
        import random

        policy = RetryPolicy(base_delay_ms=5.0, multiplier=2.0,
                             max_delay_ms=200.0, jitter_ms=0.0)
        rng = random.Random(0)
        assert policy.backoff_ms(1, rng) == 5.0
        assert policy.backoff_ms(2, rng) == 10.0
        assert policy.backoff_ms(3, rng) == 20.0
        assert policy.backoff_ms(10, rng) == 200.0  # capped


# ---------------------------------------------------------------------------
# Transport resilience
# ---------------------------------------------------------------------------


class TestTransportRetries:
    def _drop_first_queries(self, count):
        seen = {"n": 0}

        def drop(message):
            if message.kind == "QueryMessage":
                seen["n"] += 1
                return seen["n"] <= count
            return False

        return drop

    def test_retry_recovers_from_transient_drops(self):
        transport, _, b = make_transport(
            retry=RetryPolicy(max_attempts=3, jitter_ms=0.0),
            drop=self._drop_first_queries(2))
        reply = transport.request(query())
        assert isinstance(reply, AnswerMessage)
        assert b.handled == 1
        assert transport.stats.retries == 2
        assert transport.stats.dropped == 2

    def test_backoff_charged_to_simulated_clock(self):
        transport, _, _ = make_transport(
            retry=RetryPolicy(max_attempts=3, base_delay_ms=5.0,
                              multiplier=2.0, jitter_ms=0.0),
            drop=self._drop_first_queries(2))
        transport.request(query())
        # 1ms dropped + 5ms backoff + 1ms dropped + 10ms backoff
        # + 1ms query + 1ms reply
        assert transport.stats.simulated_ms == pytest.approx(19.0)
        assert transport.now_ms == pytest.approx(19.0)

    def test_retries_exhausted_reraise_transient(self):
        transport, _, b = make_transport(
            retry=RetryPolicy(max_attempts=2, jitter_ms=0.0),
            drop=lambda m: m.kind == "QueryMessage")
        session = transport.sessions.get_or_create("s1", "a")
        with pytest.raises(TransientNetworkError):
            transport.request(query())
        assert b.handled == 0
        assert transport.stats.retries == 1
        assert session.counters["gave_up"] == 1

    def test_no_retry_without_policy(self):
        transport, _, _ = make_transport(drop=lambda m: True)
        with pytest.raises(TransientNetworkError):
            transport.request(query())
        assert transport.stats.retries == 0

    def test_oversize_is_never_retried(self):
        transport, _, _ = make_transport(
            retry=RetryPolicy(max_attempts=5, jitter_ms=0.0))
        transport.max_message_bytes = 10
        with pytest.raises(MessageTooLargeError):
            transport.request(query())
        assert transport.stats.retries == 0

    def test_corrupt_query_detected_not_retried(self):
        # A query carries no credentials to tamper, so corruption surfaces
        # as a deterministic checksum failure at the edge: no retry.
        transport, _, b = make_transport(
            faults=uniform_plan(seed=0, corrupt=1.0),
            retry=RetryPolicy(max_attempts=5, jitter_ms=0.0))
        with pytest.raises(SignatureError):
            transport.request(query())
        assert transport.stats.retries == 0
        assert b.handled == 0


class TestExactlyOnceExecution:
    def test_duplicate_delivery_runs_handler_once(self):
        transport, _, b = make_transport(
            faults=uniform_plan(seed=0, duplicate=1.0))
        reply = transport.request(query())
        assert isinstance(reply, AnswerMessage)
        assert b.handled == 1
        assert transport.stats.duplicates_suppressed >= 1
        assert transport.faults.stats["duplicates"] >= 1

    def test_lost_reply_retry_hits_reply_cache(self):
        state = {"dropped": False}

        def drop_first_reply(message):
            if message.kind == "AnswerMessage" and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        transport, _, b = make_transport(
            retry=RetryPolicy(max_attempts=2, jitter_ms=0.0),
            drop=drop_first_reply)
        reply = transport.request(query())
        assert isinstance(reply, AnswerMessage)
        # The handler ran for the first attempt; the retry after the lost
        # reply was served from the reply cache — exactly-once execution.
        assert b.handled == 1
        assert transport.stats.retries == 1
        assert transport.stats.duplicates_suppressed == 1

    def test_release_session_evicts_reply_cache(self):
        transport, _, b = make_transport()
        message = query()
        transport.request(message)
        transport.request(message)  # same id: deduped
        assert b.handled == 1
        transport.release_session("s1")
        transport.request(message)  # cache gone: handler executes again
        assert b.handled == 2


class TestCrashWindows:
    def test_patient_retry_outlasts_outage(self):
        plan = FaultPlan(seed=1).crash("b", 0.0, 10.0)
        transport, _, b = make_transport(
            faults=plan,
            retry=RetryPolicy(max_attempts=3, base_delay_ms=6.0,
                              multiplier=2.0, jitter_ms=0.0))
        transport.latency = constant_latency(2.0)
        # t=0 down, t=8 still down, t=22 (after 12ms backoff) restarted.
        reply = transport.request(query())
        assert isinstance(reply, AnswerMessage)
        assert b.handled == 1
        assert plan.stats["crash_drops"] == 2
        assert transport.stats.retries == 2

    def test_impatient_caller_fails_during_outage(self):
        plan = FaultPlan(seed=1).crash("b", 0.0, 10.0)
        transport, _, _ = make_transport(faults=plan)
        with pytest.raises(PeerUnavailableError):
            transport.request(query())

    def test_registry_liveness_marks(self):
        transport, _, _ = make_transport()
        transport.registry.mark_down("b")
        with pytest.raises(PeerUnavailableError):
            transport.request(query())
        transport.registry.mark_up("b")
        assert isinstance(transport.request(query()), AnswerMessage)


class TestDeadlines:
    def test_expired_deadline_raises(self):
        transport, _, _ = make_transport()
        session = transport.sessions.get_or_create("s1", "a")
        session.set_deadline(transport.now_ms)  # zero budget
        with pytest.raises(DeadlineExceeded):
            transport.request(query())
        assert session.counters["deadline_exceeded"] == 1
        assert any(e.kind == "deadline" for e in session.transcript)

    def test_deadline_checked_between_retries(self):
        transport, _, _ = make_transport(
            retry=RetryPolicy(max_attempts=5, base_delay_ms=10.0,
                              jitter_ms=0.0),
            drop=lambda m: m.kind == "QueryMessage")
        session = transport.sessions.get_or_create("s1", "a")
        session.set_deadline(transport.now_ms + 5.0)
        # Attempt 1 fits the budget; the 10ms backoff blows it before
        # attempt 2 — the deadline wins over further retries.
        with pytest.raises(DeadlineExceeded):
            transport.request(query())
        assert session.counters["retries"] == 1
        assert session.counters["gave_up"] == 0

    def test_set_deadline_only_tightens(self):
        session_table_free = Transport().sessions
        session = session_table_free.get_or_create("s", "a")
        session.set_deadline(100.0)
        session.set_deadline(500.0)
        assert session.deadline_at_ms == 100.0
        session.set_deadline(50.0)
        assert session.deadline_at_ms == 50.0


class TestSessionLifecycle:
    def test_release_session_forgets_by_default(self):
        transport, _, _ = make_transport()
        transport.sessions.get_or_create("s1", "a")
        assert len(transport.sessions) == 1
        transport.release_session("s1")
        assert len(transport.sessions) == 0

    def test_retain_sessions_opts_out_of_eviction(self):
        transport, _, _ = make_transport(retain_sessions=True)
        transport.sessions.get_or_create("s1", "a")
        transport.release_session("s1")
        assert transport.sessions.get("s1") is not None

    def test_negotiations_do_not_grow_session_table(self):
        from repro import negotiate

        world = World(key_bits=KEY_BITS)
        world.add_peer("Server", "open(1) <-{true} true.")
        client = world.add_peer("Client")
        world.distribute_keys()
        for _ in range(5):
            assert negotiate(client, "Server", parse_literal("open(1)")).granted
        assert len(world.transport.sessions) == 0

    def test_audit_clears_stranded_in_flight(self):
        session = Transport().sessions.get_or_create("s", "a")
        session.enter_remote("a", "b", ("p", 1))
        assert session.audit_in_flight() == 1
        assert not session.in_flight
        assert session.counters["in_flight_leaked"] == 1


class TestJitteredLatency:
    def test_deterministic_per_args_not_call_order(self):
        model = jittered_latency(seed=3)
        first = model("a", "b", 10)
        model("x", "y", 99)  # unrelated call must not perturb the link
        model("a", "c", 10)
        assert model("a", "b", 10) == first

    def test_varies_across_links_and_sizes(self):
        model = jittered_latency(seed=3, jitter_ms=5.0)
        samples = {model("a", "b", 10), model("a", "c", 10),
                   model("a", "b", 11), model("b", "a", 10)}
        assert len(samples) > 1


# ---------------------------------------------------------------------------
# Engine failure counters under faults (satellite: counter coverage)
# ---------------------------------------------------------------------------


class ScriptedProvider:
    """A transport-registered handler answering every query with a fixed
    item list — lets tests inject malformed answers a real Peer never sends."""

    def __init__(self, name, items):
        self.name = name
        self.items = tuple(items)

    def handle(self, message):
        return AnswerMessage(sender=self.name, receiver=message.sender,
                             session_id=message.session_id,
                             query_id=message.message_id, items=self.items)


class TestFailureCounters:
    def _client_world(self):
        world = World(key_bits=KEY_BITS)
        client = world.add_peer("Client")
        world.distribute_keys()
        return world, client

    def test_unknown_target_counted(self):
        world, client = self._client_world()
        session = world.transport.sessions.get_or_create("s-unknown", "Client")
        solutions = client.local_query(parse_literal('p("a") @ "Ghost"'),
                                       session=session)
        assert not solutions
        assert session.counters["unknown_targets"] == 1

    def test_nesting_exhausted_counted(self):
        world, client = self._client_world()
        world.add_peer("Server")
        session = world.transport.sessions.get_or_create(
            "s-nest", "Client", max_nesting=0)
        solutions = client.local_query(parse_literal('p("a") @ "Server"'),
                                       session=session)
        assert not solutions
        assert session.counters["nesting_exhausted"] == 1

    def test_bad_credentials_counted_and_not_admitted(self):
        world, client = self._client_world()
        stranger = keypair_for("Stranger", KEY_BITS)  # key unknown to Client
        credential = issue_credential(
            parse_rule('thing("a") signedBy ["Stranger"].'), stranger)
        world.transport.register(ScriptedProvider("Faker", [AnswerItem(
            bindings={}, credentials=(credential,),
            answered_literal=parse_literal('thing("a")'))]))
        session = world.transport.sessions.get_or_create("s-bad", "Client")
        solutions = client.local_query(parse_literal('thing("a") @ "Faker"'),
                                       session=session)
        assert not solutions
        assert session.counters["bad_credentials"] == 1
        # The unverifiable credential never reached the session overlay.
        assert len(session.received_for("Client")) == 0

    def test_mismatched_answer_counted(self):
        world, client = self._client_world()
        world.transport.register(ScriptedProvider("Faker", [AnswerItem(
            bindings={}, answered_literal=parse_literal('other("b")'))]))
        session = world.transport.sessions.get_or_create("s-mismatch", "Client")
        solutions = client.local_query(parse_literal('thing("a") @ "Faker"'),
                                       session=session)
        assert not solutions
        assert session.counters["mismatched_answers"] == 1

    def test_provider_degrades_when_third_party_unreachable(self):
        # Provider needs a third party that is unreachable: the lost branch
        # is recorded and the provider answers with a denial instead of
        # propagating the outage to its requester.
        world = World(key_bits=KEY_BITS)
        world.add_peer("Provider",
                       'open(X) <-{true} vouch(X) @ "Third".')
        world.add_peer("Third", "vouch(1).")
        client = world.add_peer("Client")
        world.distribute_keys()
        world.transport.drop = (
            lambda m: m.kind == "QueryMessage" and m.receiver == "Third")
        from repro import negotiate

        result = negotiate(client, "Provider", parse_literal("open(1)"))
        assert not result.granted
        assert result.failure_kind == "denied"
        assert result.session.counters["network_failures"] >= 1
        assert any(e.kind == "gave-up" for e in result.session.transcript)
