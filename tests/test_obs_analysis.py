"""Analysis-tier observability tests: SLOs, critical path, flight recorder.

Covers the declarative SLO spec (validation, ``histogram_quantile`` on
snapshot deltas, ratio/value edge cases, report rendering), critical-path
extraction and blame attribution over synthetic traces (with a hand-checked
decomposition and shuffle invariance), the always-on flight recorder
(bounded rings, post-mortem dumps for failures and crash recovery, global
reset), and the CLI surfaces (``slo-check``, ``trace-view
--critical-path``, ``demo --flight-recorder``).
"""

import io
import json
import random

import pytest

from repro import negotiate, parse_literal
from repro.cli import main
from repro.errors import PeerTrustError
from repro.obs import critpath, flightrec, slo
from repro.obs.flightrec import RECORDER, FlightRecorder
from repro.scenarios.elena_network import build_elena_network

KEY_BITS = 512


def run_cli(*argv):
    out = io.StringIO()
    status = main(list(argv), out=out)
    return status, out.getvalue()


# ---------------------------------------------------------------------------
# SLO specs
# ---------------------------------------------------------------------------


def minimal_spec(**overrides):
    objective = {"name": "obj", "kind": "value", "sample": "s", "max": 1}
    objective.update(overrides)
    return {"name": "spec", "objectives": [objective]}


class TestSpecParsing:
    def test_round_trip(self):
        spec = slo.parse_spec({
            "name": "demo",
            "objectives": [
                {"name": "p99", "kind": "quantile", "metric": "m",
                 "q": 0.99, "max": 50},
                {"name": "depth", "kind": "value", "sample": "g",
                 "window": "absolute", "max": 64, "min": 0},
                {"name": "rate", "kind": "ratio", "numerator": "a",
                 "denominator": "b", "max": 0.5},
            ]})
        assert spec.name == "demo"
        assert len(spec.objectives) == 3
        assert spec.objectives[0].q == 0.99
        assert spec.objectives[1].window == "absolute"
        assert spec.objectives[1].min_value == 0.0
        assert spec.objectives[2].denominator == "b"

    @pytest.mark.parametrize("bad", [
        [],                                         # not an object
        {"objectives": [{"name": "x"}]},            # no spec name
        {"name": "s"},                              # no objectives
        {"name": "s", "objectives": []},            # empty objectives
        {"name": "s", "objectives": ["nope"]},      # objective not an object
        minimal_spec(kind="median"),                # unknown kind
        minimal_spec(window="sliding"),             # unknown window
        minimal_spec(max=None),                     # no bound at all
        {"name": "s", "objectives": [
            {"name": "q", "kind": "quantile", "max": 1}]},   # no metric
        {"name": "s", "objectives": [
            {"name": "v", "kind": "value", "max": 1}]},      # no sample
        {"name": "s", "objectives": [
            {"name": "r", "kind": "ratio", "numerator": "a",
             "max": 1}]},                                    # no denominator
    ])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(PeerTrustError):
            slo.parse_spec(bad)

    def test_load_spec_missing_file(self, tmp_path):
        with pytest.raises(PeerTrustError) as excinfo:
            slo.load_spec(tmp_path / "nope.json")
        assert "cannot read SLO spec" in str(excinfo.value)

    def test_load_spec_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(PeerTrustError) as excinfo:
            slo.load_spec(path)
        assert "not valid JSON" in str(excinfo.value)

    def test_committed_fleet_spec_parses(self):
        spec = slo.load_spec("benchmarks/slo/fleet.json")
        assert spec.name == "bilateral-fleet"
        assert len(spec.objectives) >= 5


class TestHistogramQuantileSamples:
    SAMPLES = {'m_bucket{le="1"}': 2, 'm_bucket{le="5"}': 6,
               'm_bucket{le="+Inf"}': 8}

    def test_interpolates_within_bucket(self):
        # rank 4 lands in the (1, 5] bucket holding 4 observations.
        assert slo.histogram_quantile(self.SAMPLES, "m", 0.5) == 3.0

    def test_plus_inf_clamps_to_highest_finite_bound(self):
        assert slo.histogram_quantile(self.SAMPLES, "m", 1.0) == 5.0

    def test_q_zero_starts_at_origin(self):
        assert slo.histogram_quantile(self.SAMPLES, "m", 0.0) == 0.0

    def test_absent_metric_is_none(self):
        assert slo.histogram_quantile(self.SAMPLES, "other", 0.5) is None
        assert slo.histogram_quantile({}, "m", 0.5) is None

    def test_empty_window_is_none(self):
        zeros = {name: 0 for name in self.SAMPLES}
        assert slo.histogram_quantile(zeros, "m", 0.5) is None


class TestEvaluate:
    def _spec(self, objectives):
        return slo.parse_spec({"name": "t", "objectives": objectives})

    def test_pass_and_fail_bounds(self):
        spec = self._spec([
            {"name": "lo", "kind": "value", "sample": "x", "max": 10},
            {"name": "hi", "kind": "value", "sample": "x", "max": 3},
            {"name": "floor", "kind": "value", "sample": "x", "min": 7},
        ])
        report = slo.evaluate(spec, {"x": 5})
        by_name = {r.name: r for r in report.results}
        assert by_name["lo"].ok
        assert not by_name["hi"].ok
        assert not by_name["floor"].ok
        assert not report.ok
        rendered = report.render()
        assert "FAIL (1/3 objectives)" in rendered
        assert "max=3" in rendered

    def test_missing_sample_is_a_violation(self):
        spec = self._spec([{"name": "gone", "kind": "value",
                            "sample": "absent", "max": 1}])
        report = slo.evaluate(spec, {})
        assert not report.ok
        assert report.results[0].value is None
        assert "not found" in report.results[0].detail
        assert "(no data)" in report.render()

    def test_ratio_edge_cases(self):
        spec = self._spec([
            {"name": "both_zero", "kind": "ratio", "numerator": "a",
             "denominator": "b", "max": 0.5},
            {"name": "den_zero", "kind": "ratio", "numerator": "c",
             "denominator": "b", "max": 0.5},
            {"name": "normal", "kind": "ratio", "numerator": "c",
             "denominator": "d", "max": 0.5},
        ])
        report = slo.evaluate(spec, {"a": 0, "b": 0, "c": 3, "d": 10})
        by_name = {r.name: r for r in report.results}
        assert by_name["both_zero"].ok and by_name["both_zero"].value == 0.0
        assert not by_name["den_zero"].ok          # 3 / 0: no data
        assert by_name["normal"].ok and by_name["normal"].value == 0.3

    def test_absolute_window_reads_closing_snapshot(self):
        spec = self._spec([
            {"name": "delta", "kind": "value", "sample": "x", "max": 5},
            {"name": "gauge", "kind": "value", "sample": "x",
             "window": "absolute", "max": 5},
        ])
        report = slo.evaluate(spec, {"x": 2}, absolute={"x": 100})
        by_name = {r.name: r for r in report.results}
        assert by_name["delta"].ok               # delta window saw 2
        assert not by_name["gauge"].ok           # absolute snapshot saw 100

    def test_quantile_objective_over_bucket_samples(self):
        spec = self._spec([{"name": "p50", "kind": "quantile",
                            "metric": "m", "q": 0.5, "max": 4}])
        window = dict(TestHistogramQuantileSamples.SAMPLES)
        report = slo.evaluate(spec, window)
        assert report.ok and report.results[0].value == 3.0
        # Same spec, empty window: missing data must not silently pass.
        assert not slo.evaluate(spec, {}).ok

    def test_as_dict_is_json_ready(self):
        spec = self._spec([{"name": "x", "kind": "value",
                            "sample": "x", "max": 10}])
        data = slo.evaluate(spec, {"x": 1}).as_dict()
        json.dumps(data)   # must not raise
        assert data["ok"] is True
        assert data["objectives"][0]["name"] == "x"


# ---------------------------------------------------------------------------
# Critical-path analysis
# ---------------------------------------------------------------------------


def span(span_id, parent, name, start, end, attrs=None):
    return {"t": "span", "id": span_id, "parent": parent, "name": name,
            "start": start, "end": end, "attrs": attrs or {}}


def event(event_id, parent, name, at, attrs=None):
    return {"t": "event", "id": event_id, "parent": parent, "name": name,
            "at": at, "attrs": attrs or {}}


def chain_records():
    """negotiation(0..100) -> rpc(0..90, 20ms backoff) -> peer.answer
    (10..80) -> rpc(20..50): a hand-checkable blame decomposition."""
    return [
        span(1, None, "negotiation", 0.0, 100.0),
        span(2, 1, "rpc", 0.0, 90.0),
        span(3, 2, "peer.answer", 10.0, 80.0),
        span(4, 3, "rpc", 20.0, 50.0),
        event(5, 2, "transport.retry", 45.0, {"backoff_ms": 20.0}),
        event(6, 3, "negotiation.verify", 60.0),
    ]


class TestCriticalPath:
    def test_path_descends_into_latest_ending_child(self):
        analysis = critpath.analyze(chain_records())
        assert [s["id"] for s in analysis.path] == [1, 2, 3, 4]
        assert analysis.makespan_ms == 100.0

    def test_blame_decomposition(self):
        analysis = critpath.analyze(chain_records())
        # Hand computation: root self 10 (orchestration), rpc#2 self 20
        # entirely carved into retry backoff, peer.answer self 40
        # (sld-eval), rpc#4 self 30 (network-wait).
        assert analysis.blame["orchestration"] == pytest.approx(10.0)
        assert analysis.blame["retry-backoff"] == pytest.approx(20.0)
        assert analysis.blame["sld-eval"] == pytest.approx(40.0)
        assert analysis.blame["network-wait"] == pytest.approx(30.0)
        assert sum(analysis.blame.values()) == pytest.approx(100.0)
        assert analysis.event_counts == {"transport.retry": 1,
                                         "negotiation.verify": 1}

    def test_backoff_clamped_to_self_time(self):
        records = [span(1, None, "rpc", 0.0, 10.0),
                   event(2, 1, "transport.retry", 5.0,
                         {"backoff_ms": 500.0})]
        analysis = critpath.analyze(records)
        assert analysis.blame["retry-backoff"] == pytest.approx(10.0)
        assert analysis.blame["network-wait"] == pytest.approx(0.0)

    def test_root_is_latest_ending_root_span(self):
        records = [span(1, None, "negotiation", 0.0, 30.0),
                   span(2, None, "negotiation", 5.0, 60.0)]
        analysis = critpath.analyze(records)
        assert analysis.root["id"] == 2
        assert len(analysis.roots) == 2

    def test_orphans_promoted_and_open_spans_counted(self):
        records = [span(1, 99, "rpc", 0.0, 10.0),          # orphan parent
                   span(2, 1, "stuck", 2.0, None)]          # still open
        analysis = critpath.analyze(records)
        assert analysis.root["id"] == 1
        assert analysis.open_count == 1

    def test_render_contains_report_sections(self):
        rendered = critpath.render_critical_path(chain_records())
        assert rendered.startswith(
            "critical root: negotiation #1 0..100ms (makespan 100.000ms, "
            "1 root spans, 4 finished spans, 0 open)")
        assert "critical path (longest sim-time chain):" in rendered
        assert "[3] rpc #4 20..50 (30.000ms, self 30.000ms)" in rendered
        assert "blame by category" in rendered
        assert "transport retries" in rendered
        assert "crypto verify events" in rendered

    def test_render_is_input_order_invariant(self):
        records = chain_records()
        baseline = critpath.render_critical_path(records)
        shuffled = list(records)
        for seed in range(5):
            random.Random(seed).shuffle(shuffled)
            assert critpath.render_critical_path(shuffled) == baseline

    def test_empty_trace(self):
        assert critpath.render_critical_path([]) == \
            "(no finished spans -- nothing to analyze)\n"


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=8)
        for index in range(20):
            recorder.note(float(index), "s", "send", "a", "b", str(index))
        events = recorder.events_for("s")
        assert len(events) == 8
        assert events[0][4] == "12"        # oldest retained is the 13th
        assert events[-1][4] == "19"

    def test_forget_drops_the_ring(self):
        recorder = FlightRecorder()
        recorder.note(1.0, "s", "send")
        recorder.forget("s")
        assert recorder.events_for("s") == []
        assert recorder.live_sessions() == []

    def test_disabled_recorder_is_a_no_op(self):
        recorder = FlightRecorder()
        recorder.enabled = False
        recorder.note(1.0, "s", "send")
        assert recorder.events_for("s") == []

    def test_events_mentioning_scans_all_rings(self):
        recorder = FlightRecorder()
        recorder.note(2.0, "s2", "drop", "Alice", "Bob")
        recorder.note(1.0, "s1", "send", "Bob", "Alice")
        recorder.note(3.0, "s1", "send", "Carol", "Dave")
        hits = recorder.events_mentioning("Alice")
        assert [(sid, entry[1]) for sid, entry in hits] == \
            [("s1", "send"), ("s2", "drop")]   # oldest first, by t_ms

    def test_reset_all_clears_global_recorder(self):
        from repro.determinism import reset_all

        RECORDER.note(1.0, "s", "send", "a", "b")
        RECORDER.dumps.append({"reason": "test"})
        reset_all()
        assert RECORDER.live_sessions() == []
        assert len(RECORDER.dumps) == 0

    def test_failed_negotiation_dumps_a_post_mortem(self):
        network = build_elena_network(key_bits=KEY_BITS)
        result = negotiate(network.alice, "E-Learn",
                           parse_literal('enroll(spanish205, "Alice")'),
                           deadline_ms=2.5)
        assert not result.granted and result.failure_kind
        assert len(RECORDER.dumps) >= 1
        dump = RECORDER.dumps[-1]
        assert dump["reason"] == f"failure:{result.failure_kind}"
        assert dump["requester"] == "Alice"
        assert dump["session"]["id"] == result.session.id
        kinds = {entry["kind"] for entry in dump["events"]}
        assert "send" in kinds              # the ring saw the traffic
        json.dumps(dump)                    # post-mortems are JSON-ready

    def test_successful_negotiation_dumps_nothing(self):
        network = build_elena_network(key_bits=KEY_BITS)
        result = negotiate(network.alice, "E-Learn",
                           parse_literal('enroll(spanish205, "Alice")'))
        assert result.granted
        assert len(RECORDER.dumps) == 0
        # The session ring was forgotten on release: rings never outlive
        # their session, so "always on" stays bounded.
        assert RECORDER.live_sessions() == []

    def test_crash_recovery_dumps_a_post_mortem(self):
        from repro.storage.recovery import restart_peer
        from repro.workloads.generator import build_bilateral_fleet

        fleet = build_bilateral_fleet(1, key_bits=KEY_BITS)
        restart_peer(fleet.world.transport, "Client0")
        recovery_dumps = [d for d in RECORDER.dumps
                          if d["reason"] == "crash-recovery"]
        assert len(recovery_dumps) == 1
        dump = recovery_dumps[0]
        assert dump["peer"] == "Client0"
        assert dump["recovery"]["warm"] is False
        kinds = {entry["kind"] for entry in dump["events"]}
        assert "crash" in kinds
        json.dumps(dump)

    def test_fingerprint_is_deterministic(self):
        network = build_elena_network(key_bits=KEY_BITS)
        session = network.world.transport.sessions.get_or_create(
            "fp", "Alice", 30)
        session.counters["b"] += 2
        session.counters["a"] += 1
        fingerprint = flightrec.session_fingerprint(session)
        assert fingerprint["id"] == "fp"
        assert list(fingerprint["counters"]) == ["a", "b"]


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------


class TestCliAnalysis:
    def test_slo_check_passes_committed_fleet_spec(self):
        status, output = run_cli(
            "slo-check", "benchmarks/slo/fleet.json",
            "--pairs", "1", "--key-bits", str(KEY_BITS))
        assert status == 0
        assert "-- PASS" in output

    def test_slo_check_fails_violated_spec(self, tmp_path):
        spec_path = tmp_path / "tight.json"
        spec_path.write_text(json.dumps({
            "name": "tight",
            "objectives": [{"name": "impossible", "kind": "value",
                            "sample": "peertrust_transport_messages_total",
                            "max": 0}]}))
        status, output = run_cli(
            "slo-check", str(spec_path),
            "--pairs", "1", "--key-bits", str(KEY_BITS))
        assert status == 1
        assert "-- FAIL" in output
        assert "impossible" in output

    def test_slo_check_json_report(self, tmp_path):
        report_path = tmp_path / "slo.json"
        status, _ = run_cli(
            "slo-check", "benchmarks/slo/fleet.json",
            "--pairs", "1", "--key-bits", str(KEY_BITS),
            "--json", str(report_path))
        assert status == 0
        data = json.loads(report_path.read_text())
        assert data["ok"] is True
        assert {obj["name"] for obj in data["objectives"]} >= \
            {"p50_negotiation_sim_ms", "p99_negotiation_sim_ms"}

    def test_trace_view_critical_path(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        status, _ = run_cli("demo", "quickstart", "--trace",
                            str(trace_path))
        assert status == 0
        status, output = run_cli("trace-view", str(trace_path),
                                 "--critical-path")
        assert status == 0
        assert output.startswith("critical root:")
        assert "blame by category" in output

    def test_demo_flight_recorder_writes_dump_file(self, tmp_path):
        recorder_path = tmp_path / "flightrec.jsonl"
        status, _ = run_cli(
            "demo", "scenario2",
            "--drop", "0.3", "--fault-seed", "7", "--retries", "4",
            "--flight-recorder", str(recorder_path))
        assert recorder_path.exists()
        dumps = [json.loads(line)
                 for line in recorder_path.read_text().splitlines()]
        assert len(dumps) >= 1
        assert all("reason" in dump for dump in dumps)
        kinds = {entry["kind"] for dump in dumps
                 for entry in dump["events"]}
        assert kinds & {"drop", "retry"}    # the weather left a ring trail
