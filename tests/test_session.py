"""Session, transcript, and loop-detection tests."""

from repro.negotiation.session import Session, SessionTable, next_session_id


class TestTranscript:
    def test_log_and_render(self):
        session = Session("s1", "Alice")
        session.log("query", "Alice", "Bob", "p(X)")
        session.log("answer", "Bob", "Alice", "p(1)")
        text = session.render_transcript()
        assert "Alice -> Bob: query p(X)" in text
        assert "[0002]" in text

    def test_events_filter_by_kind(self):
        session = Session("s1", "Alice")
        session.log("query", "A", "B", "g")
        session.log("deny", "B", "A", "g")
        assert len(list(session.events("deny"))) == 1
        assert len(list(session.events())) == 2

    def test_counters_track_kinds(self):
        session = Session("s1", "Alice")
        session.log("query", "A", "B")
        session.log("query", "A", "B")
        assert session.counters["query"] == 2


class TestLoopDetection:
    def test_reentrant_query_detected(self):
        session = Session("s1", "A")
        key = ("goal",)
        assert session.enter_remote("A", "B", key)
        assert not session.enter_remote("A", "B", key)
        assert session.counters["loops_detected"] == 1

    def test_exit_allows_reentry(self):
        session = Session("s1", "A")
        key = ("goal",)
        session.enter_remote("A", "B", key)
        session.exit_remote("A", "B", key)
        assert session.enter_remote("A", "B", key)

    def test_direction_matters(self):
        session = Session("s1", "A")
        key = ("goal",)
        assert session.enter_remote("A", "B", key)
        assert session.enter_remote("B", "A", key)

    def test_nesting_budget(self):
        session = Session("s1", "A", max_nesting=2)
        session.depth = 2
        assert not session.nesting_available()


class TestOverlaysAndHolders:
    def test_received_store_per_peer(self):
        session = Session("s1", "A")
        assert session.received_for("A") is session.received_for("A")
        assert session.received_for("A") is not session.received_for("B")

    def test_disclosure_counts(self, keys_for):
        from repro.credentials.credential import issue_credential
        from repro.datalog.parser import parse_rule

        session = Session("s1", "A")
        credential = issue_credential(
            parse_rule('c(1) signedBy ["SessCA"].'), keys_for("SessCA"))
        session.received_for("B").add(credential)
        assert session.credentials_disclosed_to("B") == 1
        assert session.total_disclosures() == 1

    def test_holders(self):
        session = Session("s1", "A")
        session.mark_holder("serial-1", "A")
        assert session.holds("serial-1", "A")
        assert not session.holds("serial-1", "B")
        assert not session.holds("other", "A")

    def test_release_cache(self):
        session = Session("s1", "A")
        assert session.release_cached(("k",)) is None
        session.cache_release(("k",), True)
        assert session.release_cached(("k",)) is True


class TestSessionTable:
    def test_get_or_create_idempotent(self):
        table = SessionTable()
        first = table.get_or_create("s1", "A")
        second = table.get_or_create("s1", "B")  # initiator ignored on reuse
        assert first is second and len(table) == 1

    def test_forget(self):
        table = SessionTable()
        table.get_or_create("s1", "A")
        table.forget("s1")
        assert table.get("s1") is None

    def test_session_ids_unique(self):
        assert next_session_id() != next_session_id()
