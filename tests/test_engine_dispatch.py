"""Dispatcher semantics: the signedBy axiom, authority reduction, evidence
drops, remote evaluation, and certification."""

import pytest

from repro.datalog.parser import parse_literal
from repro.negotiation.engine import EvalContext, evidence_context
from repro.negotiation.session import Session
from repro.world import World

KEY_BITS = 512


def make_world(**kwargs) -> World:
    return World(key_bits=KEY_BITS, **kwargs)


_session_ids = iter(range(10_000))


def context_for(peer, requester="Asker", session=None, **options):
    if session is None:
        session_id = f"dispatch-{next(_session_ids)}"
        if peer.transport is not None:
            # Use the transport's session table so nested handlers share
            # the same Session object (loop detection spans peers).
            session = peer.transport.sessions.get_or_create(session_id, requester)
        else:
            session = Session(session_id, requester)
    return EvalContext(
        peer=peer,
        session=session,
        requester=requester,
        kb=peer.kb,
        stores=[peer.credentials, session.received_for(peer.name)],
        **options,
    )


class TestCredentialAxiom:
    def test_chained_head_credential(self):
        world = make_world()
        holder = world.add_peer("Holder")
        world.issuer("UIUC")
        world.distribute_keys()
        world.give_credentials("Holder", 'student("Alice") @ "UIUC" signedBy ["UIUC"].')
        ctx = context_for(holder, allow_remote=False)
        assert ctx.query_goal(parse_literal('student("Alice") @ "UIUC"'))

    def test_bare_head_credential_gets_issuer_appended(self):
        world = make_world()
        holder = world.add_peer("Holder")
        world.issuer("VISA")
        world.distribute_keys()
        world.give_credentials("Holder", 'visaCard("IBM") signedBy ["VISA"].')
        ctx = context_for(holder, allow_remote=False)
        assert ctx.query_goal(parse_literal('visaCard("IBM") @ "VISA"'))

    def test_bare_goal_not_proven_by_credential(self):
        world = make_world()
        holder = world.add_peer("Holder")
        world.issuer("VISA")
        world.distribute_keys()
        world.give_credentials("Holder", 'visaCard("IBM") signedBy ["VISA"].')
        ctx = context_for(holder, allow_remote=False)
        assert not ctx.query_goal(parse_literal('visaCard("IBM")'))

    def test_foreign_authority_claim_rejected(self):
        """A credential signed by X claiming `lit @ Y` cannot vouch."""
        world = make_world()
        holder = world.add_peer("Holder")
        world.issuer("Mallory")
        world.distribute_keys()
        world.give_credentials(
            "Holder", 'student("Alice") @ "UIUC" signedBy ["Mallory"].')
        ctx = context_for(holder, allow_remote=False)
        assert not ctx.query_goal(parse_literal('student("Alice") @ "UIUC"'))

    def test_credential_body_resolved(self):
        world = make_world()
        holder = world.add_peer("Holder")
        world.issuer("UIUC")
        world.issuer("Registrar")
        world.distribute_keys()
        world.give_credentials("Holder", '''
            student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "Registrar".
            student("Alice") @ "Registrar" signedBy ["Registrar"].
        ''')
        ctx = context_for(holder, allow_remote=False)
        solutions = ctx.query_goal(parse_literal('student(W) @ "UIUC"'))
        assert [str(s.binding("W")) for s in solutions] == ['"Alice"']

    def test_credential_body_with_builtin(self):
        world = make_world()
        holder = world.add_peer("Holder")
        world.issuer("IBM")
        world.distribute_keys()
        world.give_credentials(
            "Holder",
            'authorized("Bob", Price) @ "IBM" <- signedBy ["IBM"] Price < 2000.')
        ctx = context_for(holder, allow_remote=False)
        assert ctx.query_goal(parse_literal('authorized("Bob", 1500) @ "IBM"'))
        assert not ctx.query_goal(parse_literal('authorized("Bob", 2500) @ "IBM"'))

    def test_proof_carries_credential_payload(self):
        world = make_world()
        holder = world.add_peer("Holder")
        world.issuer("UIUC")
        world.distribute_keys()
        issued = world.give_credentials(
            "Holder", 'student("Alice") @ "UIUC" signedBy ["UIUC"].')
        ctx = context_for(holder, allow_remote=False)
        solution = ctx.query_goal(parse_literal('student("Alice") @ "UIUC"'))[0]
        assert solution.proofs[0].credentials() == [issued[0]]


class TestAuthorityReduction:
    def test_self_layer_dropped(self):
        world = make_world()
        peer = world.add_peer("Me", "fact(1).")
        ctx = context_for(peer, allow_remote=False)
        assert ctx.query_goal(parse_literal('fact(1) @ "Me"'))

    def test_drop_peers_layer(self):
        world = make_world()
        peer = world.add_peer("Me", "fact(1).")
        ctx = context_for(peer, allow_remote=False,
                          drop_peers=frozenset({"Friend"}))
        assert ctx.query_goal(parse_literal('fact(1) @ "Me" @ "Friend"'))

    def test_unknown_layer_fails_without_remote(self):
        world = make_world()
        peer = world.add_peer("Me", "fact(1).")
        ctx = context_for(peer, allow_remote=False)
        assert not ctx.query_goal(parse_literal('fact(1) @ "Stranger"'))

    def test_unbound_authority_counts_and_fails(self):
        world = make_world()
        peer = world.add_peer("Me", "fact(1).")
        session = Session("s-unbound", "Asker")
        ctx = context_for(peer, session=session, allow_remote=False)
        assert not ctx.query_goal(parse_literal("fact(1) @ Somebody"))
        assert session.counters["unbound_authority"] >= 1


class TestRemoteEvaluation:
    def build_pair(self, **asker_options):
        world = make_world()
        oracle = world.add_peer("Oracle", """
            wisdom(42).
            wisdom(X) $ true <-{true} wisdom(X).
        """)
        asker = world.add_peer("Asker", **asker_options)
        world.distribute_keys()
        return world, oracle, asker

    def test_remote_query_with_answer_credential(self):
        world, _, asker = self.build_pair()
        ctx = context_for(asker, requester="Asker")
        solutions = ctx.query_goal(parse_literal('wisdom(W) @ "Oracle"'))
        assert [str(s.binding("W")) for s in solutions] == ["42"]
        # proof is a certified remote node
        assert solutions[0].proofs[0].kind in ("remote", "evidence-drop")

    def test_uncertified_answer_rejected_by_default(self):
        world = make_world()
        # Oracle asserts something about a *different* authority, unverifiable.
        world.add_peer("Oracle", """
            claim(1) @ "Zeus".
            claim(X) @ Y $ true <-{true} claim(X) @ Y.
        """)
        asker = world.add_peer("Asker")
        world.issuer("Zeus")
        world.distribute_keys()
        session = world.transport.sessions.get_or_create("s-uncert", "Asker")
        ctx = context_for(asker, session=session)
        assert not ctx.query_goal(parse_literal('claim(1) @ "Zeus" @ "Oracle"'))
        assert session.counters["uncertified_answers"] >= 1

    def test_assertion_mode_accepts_when_opted_in(self):
        world = make_world()
        world.add_peer("Oracle", """
            claim(1) @ "Zeus".
            claim(X) @ Y $ true <-{true} claim(X) @ Y.
        """)
        asker = world.add_peer("Asker", require_certified_answers=False)
        world.issuer("Zeus")
        world.distribute_keys()
        ctx = context_for(asker)
        solutions = ctx.query_goal(parse_literal('claim(1) @ "Zeus" @ "Oracle"'))
        assert solutions and solutions[0].proofs[0].kind == "asserted"

    def test_loop_guard_prevents_reentry(self):
        world = make_world()
        # Two peers, each delegating to the other: a ping-pong loop.
        world.add_peer("A", 'claim(X) $ true <- claim(X) @ "B".')
        world.add_peer("B", 'claim(X) $ true <- claim(X) @ "A".')
        client = world.add_peer("Client")
        world.distribute_keys()
        session = world.transport.sessions.get_or_create("s-loop", "Client")
        ctx = context_for(client, session=session)
        assert not ctx.query_goal(parse_literal('claim(1) @ "A"'))
        assert session.counters["loops_detected"] >= 1

    def test_evidence_drop_skips_network(self):
        """Once evidence is in hand, repeated guard checks do not re-query."""
        world, _, asker = self.build_pair()
        session = world.transport.sessions.get_or_create("s-evidence", "Asker")
        ctx = context_for(asker, session=session)
        goal = parse_literal('wisdom(42) @ "Oracle"')
        assert ctx.query_goal(goal, max_solutions=1)
        messages_before = world.stats.messages
        ctx2 = context_for(asker, session=session)
        assert ctx2.query_goal(goal, max_solutions=1)
        assert world.stats.messages == messages_before  # no new traffic


class TestEvidenceContext:
    def test_evidence_context_rederives(self):
        world = make_world()
        holder = world.add_peer("Holder")
        world.issuer("UIUC")
        world.distribute_keys()
        world.give_credentials("Holder", 'student("Alice") @ "UIUC" signedBy ["UIUC"].')
        session = Session("s-ev", "Holder")
        evidence = evidence_context(holder, session, vouching_peer="Alice")
        proof = evidence.derive_evidence(
            parse_literal('student("Alice") @ "UIUC" @ "Alice"'))
        assert proof is not None

    def test_evidence_ignores_unsigned_rules(self):
        world = make_world()
        holder = world.add_peer("Holder", "secretly(1).")
        world.distribute_keys()
        session = Session("s-ev2", "Holder")
        evidence = evidence_context(holder, session, vouching_peer="X")
        assert evidence.derive_evidence(parse_literal("secretly(1)")) is None
