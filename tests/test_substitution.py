"""Unit tests for repro.datalog.substitution."""

from repro.datalog.substitution import Substitution
from repro.datalog.terms import atom, struct, var


class TestBasics:
    def test_empty_has_no_bindings(self):
        assert len(Substitution.empty()) == 0
        assert not Substitution.empty()

    def test_bind_returns_new_substitution(self):
        base = Substitution.empty()
        extended = base.bind(var("X"), atom("a"))
        assert base.lookup(var("X")) is None
        assert extended.lookup(var("X")) == atom("a")

    def test_truthiness_reflects_bindings(self):
        assert Substitution.empty().bind(var("X"), atom("a"))

    def test_is_bound(self):
        subst = Substitution.empty().bind(var("X"), atom("a"))
        assert subst.is_bound(var("X"))
        assert not subst.is_bound(var("Y"))


class TestWalkResolve:
    def test_walk_follows_chains(self):
        subst = (Substitution.empty()
                 .bind(var("X"), var("Y"))
                 .bind(var("Y"), atom("a")))
        assert subst.walk(var("X")) == atom("a")

    def test_walk_stops_at_unbound(self):
        subst = Substitution.empty().bind(var("X"), var("Y"))
        assert subst.walk(var("X")) == var("Y")

    def test_walk_does_not_descend(self):
        subst = Substitution.empty().bind(var("X"), atom("a"))
        term = struct("f", var("X"))
        assert subst.walk(term) == term

    def test_resolve_descends(self):
        subst = Substitution.empty().bind(var("X"), atom("a"))
        assert subst.resolve(struct("f", var("X"))) == struct("f", atom("a"))

    def test_resolve_transitive(self):
        subst = (Substitution.empty()
                 .bind(var("X"), struct("f", var("Y")))
                 .bind(var("Y"), atom("a")))
        assert subst.resolve(var("X")) == struct("f", atom("a"))


class TestIterationShadowing:
    def test_items_inner_shadows_outer(self):
        subst = (Substitution.empty()
                 .bind(var("X"), atom("a")))
        rebound = subst.bind(var("X"), atom("b"))
        assert dict(rebound.items())[var("X")] == atom("b")
        assert len(rebound) == 1

    def test_domain(self):
        subst = (Substitution.empty()
                 .bind(var("X"), atom("a"))
                 .bind(var("Y"), atom("b")))
        assert subst.domain() == {var("X"), var("Y")}

    def test_restricted_to(self):
        subst = (Substitution.empty()
                 .bind(var("X"), var("Y"))
                 .bind(var("Y"), atom("a"))
                 .bind(var("Z"), atom("c")))
        restricted = subst.restricted_to({var("X")})
        assert restricted == {var("X"): atom("a")}


class TestFlattening:
    def test_deep_chains_stay_correct_past_threshold(self):
        subst = Substitution.empty()
        for index in range(40):  # beyond the flatten threshold
            subst = subst.bind(var(f"V{index}"), atom(f"a{index}"))
        for index in range(40):
            assert subst.lookup(var(f"V{index}")) == atom(f"a{index}")
        assert len(subst) == 40

    def test_flattening_preserves_shadowing(self):
        subst = Substitution.empty()
        subst = subst.bind(var("X"), atom("old"))
        for index in range(30):
            subst = subst.bind(var(f"V{index}"), atom("pad"))
        subst = subst.bind(var("X"), atom("new")) if False else subst
        # X keeps the original binding through flattening
        assert subst.resolve(var("X")) == atom("old")

    def test_branching_shares_parent(self):
        base = Substitution.empty().bind(var("X"), atom("a"))
        left = base.bind(var("Y"), atom("l"))
        right = base.bind(var("Y"), atom("r"))
        assert left.resolve(var("Y")) == atom("l")
        assert right.resolve(var("Y")) == atom("r")
        assert left.resolve(var("X")) == right.resolve(var("X")) == atom("a")


def test_repr_lists_resolved_bindings():
    subst = Substitution.empty().bind(var("X"), var("Y")).bind(var("Y"), atom("a"))
    assert "X=a" in repr(subst)
