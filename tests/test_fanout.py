"""Scatter-gather remote evaluation and per-session disclosure deltas.

Covers the ISSUE-4 tentpole: a conjunction of independent remote sub-goals
fans out as one concurrent batch (``Transport.max_in_flight`` > 1) with the
same answers, deterministic traces (with and without a fault plan), and a
strictly smaller simulated makespan; ``max_in_flight=1`` leaves the gather
hook uninstalled so defaults replay the sequential behaviour exactly.
Delta coverage: repeat disclosures inside one session travel as
:class:`~repro.net.message.CredentialRef` entries, the receiver resolves
them from its session cache without re-verifying, unresolvable or revoked
references reject the item, and cross-item duplicate payloads are deduped.
"""

from __future__ import annotations

import pytest

from repro.credentials.revocation import RevocationList
from repro.datalog.parser import parse_literal
from repro.datalog.substitution import Substitution
from repro.negotiation.engine import EvalContext
from repro.net.faults import uniform_plan
from repro.net.message import (
    AnswerItem,
    QueryMessage,
    credential_ref,
    dedup_answer_credentials,
    ref_matches,
)
from repro.net.transport import RetryPolicy, constant_latency
from repro.runtime import run_negotiation, scheduler_for
from repro.scenarios.services import build_scenario2
from repro.workloads.generator import build_fanout_workload
from repro.world import World


def _gather_workload(width: int, max_in_flight: int, faults: bool = False):
    workload = build_fanout_workload(width)
    transport = workload.world.transport
    transport.latency = constant_latency(1.0)
    transport.max_in_flight = max_in_flight
    if faults:
        workload.world.inject_faults(
            uniform_plan(seed=29, drop=0.05, duplicate=0.05, delay_rate=0.1,
                         delay_ms=2.0))
        workload.world.set_retry(RetryPolicy(max_attempts=3, jitter_ms=0.0))
    return workload


def _run(workload):
    transport = workload.world.transport
    start = transport.now_ms
    result = run_negotiation(workload.requester, workload.provider_name,
                             workload.goal)
    elapsed = transport.now_ms - start
    trace = tuple(scheduler_for(transport).trace)
    return result, elapsed, trace


class TestScatterGather:
    def test_gather_fires_and_answers_match_sequential(self):
        sequential, seq_elapsed, _ = _run(_gather_workload(4, max_in_flight=1))
        gathered, gat_elapsed, _ = _run(_gather_workload(4, max_in_flight=4))
        assert sequential.granted and gathered.granted
        assert sequential.answers == gathered.answers
        assert gathered.session.counters["gather_batches"] == 1
        assert gathered.session.counters["gather_calls"] == 4
        assert gat_elapsed < seq_elapsed

    def test_sequential_default_has_no_gather_state(self):
        result, _, trace = _run(_gather_workload(4, max_in_flight=1))
        repeat, _, repeat_trace = _run(_gather_workload(4, max_in_flight=1))
        assert result.granted and repeat.granted
        assert "gather_batches" not in result.session.counters
        assert trace == repeat_trace

    @pytest.mark.parametrize("faults", [False, True])
    def test_gathered_trace_is_deterministic(self, faults):
        first, first_ms, first_trace = _run(
            _gather_workload(6, max_in_flight=6, faults=faults))
        second, second_ms, second_trace = _run(
            _gather_workload(6, max_in_flight=6, faults=faults))
        assert first_trace  # populated at all
        assert first_trace == second_trace
        assert first_ms == second_ms
        assert first.granted == second.granted
        assert first.answers == second.answers

    def test_window_smaller_than_fanout_still_succeeds(self):
        gathered, elapsed, _ = _run(_gather_workload(8, max_in_flight=3))
        sequential, seq_elapsed, _ = _run(_gather_workload(8, max_in_flight=1))
        assert gathered.granted
        assert gathered.answers == sequential.answers
        # Window 3 over 8 calls: ceil(8/3) = 3 waves of round-trips instead
        # of 8, plus the enclosing client exchange.
        assert elapsed < seq_elapsed

    def test_faulty_gather_matches_faulty_sequential_outcome(self):
        sequential, _, _ = _run(_gather_workload(4, max_in_flight=1,
                                                 faults=True))
        gathered, _, _ = _run(_gather_workload(4, max_in_flight=4,
                                               faults=True))
        assert sequential.granted == gathered.granted
        assert sorted(map(str, sequential.answers)) == sorted(
            map(str, gathered.answers))


def _repeat_session_replies(deltas: bool, rounds: int = 2):
    scenario = build_scenario2()
    transport = scenario.world.transport
    transport.disclosure_deltas = deltas
    session = transport.sessions.get_or_create(
        "repeat-session", "Bob", scenario.bob.max_nesting)
    goal = parse_literal('enroll(cs101, "Bob", Company, Email, 0)')
    replies = []
    for _ in range(rounds):
        replies.append(transport.request(QueryMessage(
            sender="Bob", receiver="E-Learn", session_id=session.id,
            goal=goal)))
    return replies, session


class TestDisclosureDeltas:
    def test_repeat_answer_travels_as_ref(self):
        replies, session = _repeat_session_replies(deltas=True)
        first_item = replies[0].items[0]
        repeat_item = replies[1].items[0]
        assert first_item.answer_credential is not None
        assert first_item.answer_credential_ref is None
        assert repeat_item.answer_credential is None
        assert repeat_item.answer_credential_ref is not None
        assert ref_matches(repeat_item.answer_credential_ref,
                           first_item.answer_credential)
        assert session.counters["delta_refs_sent"] >= 1
        assert replies[1].wire_size() < replies[0].wire_size()

    def test_without_deltas_repeats_ship_full_payloads(self):
        replies, session = _repeat_session_replies(deltas=False)
        repeat_item = replies[1].items[0]
        assert repeat_item.answer_credential is not None
        assert repeat_item.answer_credential_ref is None
        assert "delta_refs_sent" not in session.counters


def _absorb_fixture():
    """A receiver peer, a session whose overlay caches one credential, and
    an EvalContext positioned to absorb an answer item from peer B."""
    world = World()
    receiver = world.add_peer("A")
    world.add_peer("B")
    world.distribute_keys()
    credential = world.credential('vouch("A") signedBy ["B"].')
    session = world.transport.sessions.get_or_create("s-absorb", "A")
    session.received_for("A").add(credential)
    receiver.require_certified_answers = False
    context = EvalContext(
        peer=receiver, session=session, requester="A", kb=receiver.kb,
        stores=[receiver.credentials, session.received_for("A")])
    return world, receiver, session, credential, context


def _absorb(context, session, item):
    goal = parse_literal('vouch("A")')
    return list(context._absorb_answer_item(
        goal, goal, Substitution.empty(), "B", item))


class TestRefResolution:
    def test_resolved_ref_admits_answer_without_reverification(self):
        _world, _receiver, session, credential, context = _absorb_fixture()
        item = AnswerItem(
            bindings={}, answered_literal=parse_literal('vouch("A")'),
            answer_credential_ref=credential_ref(credential))
        solutions = _absorb(context, session, item)
        assert len(solutions) == 1
        assert session.counters["delta_ref_hits"] == 1

    def test_unresolvable_ref_rejects_item(self):
        world, _receiver, session, _credential, context = _absorb_fixture()
        stranger = world.credential('other("A") signedBy ["B"].')
        item = AnswerItem(
            bindings={}, answered_literal=parse_literal('vouch("A")'),
            answer_credential_ref=credential_ref(stranger))
        assert _absorb(context, session, item) == []
        assert session.counters["unresolved_refs"] == 1

    def test_revoked_ref_rejects_item_and_purges_session_cache(self):
        world, receiver, session, credential, context = _absorb_fixture()
        crl = RevocationList("B", world.keys_for("B"))
        crl.revoke(credential.serial)
        receiver.add_crl(crl)
        item = AnswerItem(
            bindings={}, answered_literal=parse_literal('vouch("A")'),
            answer_credential_ref=credential_ref(credential))
        assert _absorb(context, session, item) == []
        assert session.counters["revoked_refs"] == 1
        # The purge empties every per-session cache for the serial, so a
        # later disclosure must ship (and re-verify) the full credential.
        assert session.received_for("A").get(credential.serial) is None


class TestCrossItemDedup:
    def test_duplicate_payloads_collapse_across_items(self):
        world = World()
        world.add_peer("B")
        world.distribute_keys()
        shared = world.credential('vouch("A") signedBy ["B"].')
        other = world.credential('other("A") signedBy ["B"].')
        items = (
            AnswerItem(bindings={}, credentials=(shared,),
                       answer_credential=other),
            AnswerItem(bindings={}, credentials=(shared, other)),
            AnswerItem(bindings={}, credentials=(shared, shared)),
        )
        deduped = dedup_answer_credentials(items)
        assert deduped[0].credentials == (shared,)
        # The second item re-shipped both: one as a sibling's payload, one
        # as a sibling's answer credential.
        assert deduped[1].credentials == ()
        assert deduped[2].credentials == ()
        serials = [c.serial for item in deduped for c in item.credentials]
        assert len(serials) == len(set(serials))

    def test_negotiation_answers_carry_no_duplicate_payloads(self):
        workload = _gather_workload(4, max_in_flight=4)
        transport = workload.world.transport
        answers = []
        original = transport.begin_transmission

        def spying(message):
            if hasattr(message, "items"):
                answers.append(message)
            return original(message)

        transport.begin_transmission = spying
        result = run_negotiation(workload.requester, workload.provider_name,
                                 workload.goal)
        assert result.granted
        assert answers
        # No AnswerMessage on the wire may ship the same payload twice.
        for reply in answers:
            serials = [c.serial for item in reply.items
                       for c in item.credentials]
            assert len(serials) == len(set(serials)), reply
