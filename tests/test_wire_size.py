"""Property: ``Message.wire_size()`` equals ``len(Message.encode())``.

The transport accounts bandwidth and latency from ``wire_size()``; the
canonical serialized payload is ``encode()``.  The two must agree byte for
byte for *every* message kind — including answer items that mix full
credential payloads with :class:`~repro.net.message.CredentialRef` delta
entries — or the simulated wire model silently drifts from what a real
serialisation would cost.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.datalog.parser import parse_literal, parse_rule
from repro.net.message import (
    AnswerItem,
    AnswerMessage,
    CredentialRef,
    DisclosureMessage,
    PolicyMessage,
    PolicyRequestMessage,
    QueryMessage,
    TableAnswerMessage,
    TableCompleteMessage,
    credential_ref,
)
from repro.world import World


def _fixtures():
    world = World()
    world.add_peer("Issuer")
    world.distribute_keys()
    credentials = tuple(
        world.credential(f'cred{i}("Holder", c{i}) signedBy ["Issuer"].')
        for i in range(3))
    return credentials


CREDENTIALS = _fixtures()
LITERALS = tuple(parse_literal(text) for text in (
    'enroll(cs101, "Bob", Company, Email, 0)',
    'vouch("Client") @ "P0"',
    "member(X)",
))
RULES = tuple(parse_rule(text) for text in (
    "ok(X) <- member(X).",
    'policy(R) <- good(R) @ "CA".',
))
TERMS = tuple(literal.args[0] for literal in LITERALS)

names = st.text(min_size=0, max_size=24)
ids = st.integers(min_value=0, max_value=2**70)  # beyond the 8-byte mask too
credentials = st.sampled_from(CREDENTIALS)
literals = st.sampled_from(LITERALS)
refs = st.builds(credential_ref, credentials) | st.builds(
    CredentialRef, serial=names, digest=names)
envelopes = st.fixed_dictionaries({
    "sender": names, "receiver": names, "session_id": names,
    "message_id": ids,
})
answer_items = st.builds(
    AnswerItem,
    bindings=st.dictionaries(names, st.sampled_from(TERMS), max_size=3),
    credentials=st.lists(credentials, max_size=3).map(tuple),
    answer_credential=st.none() | credentials,
    answered_literal=st.none() | literals,
    credential_refs=st.lists(refs, max_size=3).map(tuple),
    answer_credential_ref=st.none() | refs,
)


def _check(message):
    assert message.wire_size() == len(message.encode())


@given(envelope=envelopes, goal=literals,
       depth=st.integers(min_value=0, max_value=2**33))
def test_query_wire_size(envelope, goal, depth):
    _check(QueryMessage(goal=goal, depth=depth, **envelope))


@given(envelope=envelopes, query_id=ids,
       items=st.lists(answer_items, max_size=3).map(tuple))
def test_answer_wire_size(envelope, query_id, items):
    _check(AnswerMessage(query_id=query_id, items=items, **envelope))


@given(envelope=envelopes,
       creds=st.lists(credentials, max_size=4).map(tuple),
       final=st.booleans())
def test_disclosure_wire_size(envelope, creds, final):
    _check(DisclosureMessage(credentials=creds, final=final, **envelope))


@given(envelope=envelopes, policy_name=names)
def test_policy_request_wire_size(envelope, policy_name):
    _check(PolicyRequestMessage(policy_name=policy_name, **envelope))


@given(envelope=envelopes, policy_name=names,
       rules=st.lists(st.sampled_from(RULES), max_size=3).map(tuple),
       granted=st.booleans())
def test_policy_wire_size(envelope, policy_name, rules, granted):
    _check(PolicyMessage(policy_name=policy_name, rules=rules,
                         granted=granted, **envelope))


@given(ref=refs)
def test_credential_ref_wire_size(ref):
    assert ref.wire_size() == len(ref.encode())


@given(envelope=envelopes, query_id=ids,
       items=st.lists(answer_items, max_size=3).map(tuple),
       complete=st.booleans(),
       min_order=st.integers(min_value=0, max_value=2**33),
       grew=st.booleans())
def test_table_answer_wire_size(envelope, query_id, items, complete,
                                min_order, grew):
    _check(TableAnswerMessage(query_id=query_id, items=items,
                              complete=complete, min_order=min_order,
                              grew=grew, **envelope))


@given(envelope=envelopes,
       threshold=st.integers(min_value=0, max_value=2**33))
def test_table_complete_wire_size(envelope, threshold):
    _check(TableCompleteMessage(threshold=threshold, **envelope))
