"""Program formatting tests."""

from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.pretty import format_literal, format_program, format_rule


class TestFormatRule:
    def test_short_rule_single_line(self):
        rule = parse_rule("a(X) <- b(X).")
        assert "\n" not in format_rule(rule)

    def test_long_rule_wraps(self):
        rule = parse_rule(
            "policy49(Course, Requester, Company, Price) <-{true} "
            "price(Course, Price), "
            'authorized(Requester, Price) @ Company @ Requester, '
            'visaCard(Company) @ "VISA" @ Requester, '
            'purchaseApproved(Company, Price) @ "VISA".')
        text = format_rule(rule)
        assert "\n" in text
        assert text.endswith(".")

    def test_wrapped_rule_reparses(self):
        rule = parse_rule(
            "freebieEligible(Course, Requester, Company, EMail) <- "
            "email(Requester, EMail) @ Requester, "
            "employee(Requester) @ Company @ Requester, "
            'member(Company) @ "ELENA" @ Requester.')
        assert parse_rule(format_rule(rule)) == rule

    def test_signed_long_rule_keeps_signature(self):
        rule = parse_rule(
            'superLongPredicateName(A, B, C, D) <- signedBy ["Authority"] '
            "one(A), two(B), three(C), four(D), five(A, B, C, D).")
        text = format_rule(rule)
        assert "signedBy" in text
        assert parse_rule(text) == rule


class TestFormatProgram:
    def test_groups_by_predicate(self):
        program = parse_program("a(1). a(2). b(1).")
        text = format_program(program)
        assert text.count("\n\n") == 1

    def test_peer_banner(self):
        program = parse_program("a(1).")
        assert format_program(program, peer="E-Learn").startswith("% E-Learn:")

    def test_round_trips(self):
        source = """
        discountEnroll(Course, Party) $ Requester = Party <- discountEnroll(Course, Party).
        discountEnroll(Course, Party) <- eligibleForDiscount(Party, Course).
        member("E-Learn") @ "BBB" signedBy ["BBB"].
        """
        program = parse_program(source)
        assert parse_program(format_program(program)) == program

    def test_format_literal(self):
        from repro.datalog.parser import parse_literal

        assert format_literal(parse_literal('p(X) @ "A"')) == 'p(X) @ "A"'
