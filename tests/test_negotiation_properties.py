"""Property-based negotiation invariants.

These capture the end-to-end safety/consistency obligations that should
hold on *any* workload:

- every credential a peer receives verifies against its key ring;
- whatever parsimonious grants, the distributed saturation derives
  (soundness — the deep one, also covered in test_forward);
- a denial is stable: re-running a failed negotiation fails again
  (determinism of the policy semantics);
- transcripts account for traffic: queries logged == QueryMessages sent.
"""

from hypothesis import given, settings, strategies as st

from repro.credentials.credential import verify_credential
from repro.workloads.generator import build_random_bilateral
from repro.workloads.metrics import measure_negotiation

KEY_BITS = 512
SEEDS = st.integers(0, 100_000)


@given(SEEDS)
@settings(max_examples=10, deadline=None)
def test_property_received_credentials_all_verify(seed):
    workload = build_random_bilateral(seed, key_bits=KEY_BITS)
    result, _ = measure_negotiation(workload)
    requester = workload.requester
    for credential in result.credentials_received:
        verify_credential(credential, requester.keyring, requester.crls)


@given(SEEDS)
@settings(max_examples=10, deadline=None)
def test_property_outcome_is_deterministic(seed):
    first = measure_negotiation(build_random_bilateral(seed, key_bits=KEY_BITS))[0]
    second = measure_negotiation(build_random_bilateral(seed, key_bits=KEY_BITS))[0]
    assert first.granted == second.granted


@given(SEEDS)
@settings(max_examples=10, deadline=None)
def test_property_transcript_accounts_for_queries(seed):
    workload = build_random_bilateral(seed, key_bits=KEY_BITS)
    result, report = measure_negotiation(workload)
    stats = workload.world.stats
    logged_queries = result.session.counters.get("query", 0)
    sent_queries = stats.by_kind.get("QueryMessage", 0)
    # Every wire query except the initial goal is logged by its asker
    # (the initiation is logged as "initiate").
    assert sent_queries == logged_queries + 1


@given(SEEDS)
@settings(max_examples=8, deadline=None)
def test_property_granted_implies_provider_can_rederive(seed):
    """After a successful negotiation the provider's session overlay plus
    its own knowledge suffice to re-derive the goal offline — no hidden
    state influenced the grant."""
    workload = build_random_bilateral(seed, key_bits=KEY_BITS)
    result, _ = measure_negotiation(workload)
    if not result.granted:
        return
    provider = workload.world.peers["Server"]
    from repro.negotiation.engine import EvalContext

    context = EvalContext(
        peer=provider,
        session=result.session,
        requester=workload.requester.name,
        kb=provider.kb,
        stores=[provider.credentials,
                result.session.received_for(provider.name)],
        allow_remote=False,
        drop_peers=frozenset({workload.requester.name}),
    )
    solutions = context.query_goal(workload.goal, max_solutions=1)
    grants = provider._release_policy_grants(
        workload.goal, workload.requester.name, result.session,
        allow_remote=False)
    assert solutions or grants


@given(SEEDS)
@settings(max_examples=8, deadline=None)
def test_property_disclosures_subset_of_wallets(seed):
    """Nothing materialises out of thin air: every credential in any
    session overlay originated in some participant's wallet or is an
    answer/self credential signed by a participant."""
    workload = build_random_bilateral(seed, key_bits=KEY_BITS)
    result, _ = measure_negotiation(workload)
    participant_names = set(workload.world.peers)
    wallet_serials = {
        credential.serial
        for peer in workload.world.peers.values()
        for credential in peer.credentials.credentials()
    }
    session = result.session
    for name in participant_names:
        for credential in session.received_for(name).credentials():
            assert (credential.serial in wallet_serials
                    or credential.primary_issuer in participant_names)
