"""Peer query handling: grants, denials, release filtering, knobs."""

import pytest

from repro.datalog.parser import parse_literal
from repro.net.message import PolicyRequestMessage, QueryMessage
from repro.world import World

KEY_BITS = 512


def make_query(goal_text, sender="Client", receiver="Server", session="s-peer"):
    return QueryMessage(sender=sender, receiver=receiver,
                        session_id=session, goal=parse_literal(goal_text))


def simple_world(server_program, client_program="", **server_options):
    world = World(key_bits=KEY_BITS)
    server = world.add_peer("Server", server_program, **server_options)
    client = world.add_peer("Client", client_program)
    world.distribute_keys()
    return world, server, client


class TestQueryHandling:
    def test_public_rule_answers(self):
        world, server, _ = simple_world("hello(X) <-{true} name(X). name(world).")
        reply = server.handle(make_query("hello(W)"))
        assert not reply.is_failure
        assert str(reply.items[0].bindings["W"]) == "world"

    def test_private_rule_denied(self):
        world, server, _ = simple_world("secret(42).")
        reply = server.handle(make_query("secret(X)"))
        assert reply.is_failure

    def test_release_policy_grants_pure_resource(self):
        world, server, _ = simple_world(
            "resource(Requester) $ true <- good(Requester). good(\"Client\").")
        reply = server.handle(make_query('resource("Client")'))
        assert not reply.is_failure

    def test_release_policy_requester_mismatch(self):
        world, server, _ = simple_world(
            "d(C, P) $ Requester = P <- d(C, P). d(cs101, \"Other\").")
        reply = server.handle(make_query('d(C, "Other")'))
        assert reply.is_failure  # Client is not "Other"

    def test_answer_credential_attached_for_ground_answers(self):
        world, server, _ = simple_world("hello(X) <-{true} name(X). name(world).")
        reply = server.handle(make_query("hello(W)"))
        item = reply.items[0]
        assert item.answer_credential is not None
        assert item.answer_credential.primary_issuer == "Server"

    def test_ground_goal_single_answer(self):
        world, server, _ = simple_world(
            "n(X) <-{true} m(X). m(1). m(2). m(3).")
        reply = server.handle(make_query("n(1)"))
        assert len(reply.items) == 1

    def test_open_goal_multiple_answers(self):
        world, server, _ = simple_world("n(X) <-{true} m(X). m(1). m(2).")
        reply = server.handle(make_query("n(X)"))
        assert len(reply.items) == 2

    def test_max_answers_cap(self):
        world, server, _ = simple_world(
            "n(X) <-{true} m(X). m(1). m(2). m(3). m(4). m(5).",
            max_answers=2)
        reply = server.handle(make_query("n(X)"))
        assert len(reply.items) == 2


class TestPolicyKnobs:
    def test_answers_queries_off(self):
        world, server, _ = simple_world("open(1) <-{true} true.",
                                        answers_queries=False)
        assert server.handle(make_query("open(1)")).is_failure

    def test_query_filter(self):
        world, server, _ = simple_world(
            "a(1) <-{true} true. b(1) <-{true} true.")
        server.query_filter = lambda goal, requester: goal.predicate == "a"
        assert not server.handle(make_query("a(1)")).is_failure
        assert server.handle(make_query("b(1)")).is_failure

    def test_nesting_budget_enforced(self):
        world, server, _ = simple_world("open(1) <-{true} true.", max_nesting=0)
        session = world.transport.sessions.get_or_create("s-nest", "Client", 0)
        reply = server.handle(make_query("open(1)", session="s-nest"))
        assert reply.is_failure


class TestCredentialDisclosure:
    def build(self):
        world = World(key_bits=KEY_BITS)
        server = world.add_peer("Server", """
            vouched(X) <-{true} cert(X) @ "CA".
            cert(X) @ Y $ true <-{true} cert(X) @ Y.
        """)
        client = world.add_peer("Client")
        world.issuer("CA")
        world.distribute_keys()
        world.give_credentials("Server", 'cert("v1") signedBy ["CA"].')
        return world, server, client

    def test_proof_credentials_disclosed_when_releasable(self):
        world, server, _ = self.build()
        reply = server.handle(make_query("vouched(X)"))
        assert reply.items[0].credentials

    def test_unreleasable_credential_withheld_answer_still_sent(self):
        world, server, _ = self.build()
        # Remove the release policy: credential becomes private.
        from repro.datalog.parser import parse_rule

        server.kb.remove(parse_rule('cert(X) @ Y $ true <-{true} cert(X) @ Y.'))
        reply = server.handle(make_query("vouched(X)"))
        assert not reply.is_failure
        assert not reply.items[0].credentials  # withheld

    def test_already_held_credentials_not_resent(self):
        world, server, client = self.build()
        session = world.transport.sessions.get_or_create("s-held", "Client")
        reply = server.handle(make_query("vouched(X)", session="s-held"))
        first_count = len(reply.items[0].credentials)
        reply2 = server.handle(make_query("vouched(X)", session="s-held"))
        assert first_count == 1 and len(reply2.items[0].credentials) == 0


class TestLocalQuery:
    def test_local_query_ignores_release(self):
        world, server, _ = simple_world("secret(42).")
        solutions = server.local_query(parse_literal("secret(X)"))
        assert solutions

    def test_local_query_without_transport(self):
        from repro.negotiation.peer import Peer

        peer = Peer("Loner", program="a(1).", key_bits=KEY_BITS)
        assert peer.local_query(parse_literal("a(X)"), allow_remote=False)


class TestUniProHandling:
    def build(self):
        world = World(key_bits=KEY_BITS)
        server = world.add_peer("Server", """
            freebie(X) <- member(X).
            member("Client").
        """)
        client = world.add_peer("Client", 'ok("Client").\nok(X) $ true <-{true} ok(X).')
        world.distribute_keys()
        from repro.datalog.parser import parse_goals

        server.unipro.register_from_kb(
            server.kb, "freebie", 1,
            protection=parse_goals('ok(Requester) @ Requester'))
        return world, server, client

    def test_policy_disclosed_when_protection_met(self):
        world, server, client = self.build()
        request = PolicyRequestMessage(sender="Client", receiver="Server",
                                       session_id="s-up", policy_name="freebie")
        reply = server.handle(request)
        assert reply.granted and reply.rules

    def test_unknown_policy_refused(self):
        world, server, client = self.build()
        request = PolicyRequestMessage(sender="Client", receiver="Server",
                                       session_id="s-up2", policy_name="ghost")
        assert not server.handle(request).granted

    def test_undisclosable_policy_refused(self):
        world, server, client = self.build()
        server.unipro.register("hidden",
                               server.kb.load("hidden(1)."), protection=None)
        request = PolicyRequestMessage(sender="Client", receiver="Server",
                                       session_id="s-up3", policy_name="hidden")
        assert not server.handle(request).granted

    def test_unsatisfied_protection_refused(self):
        world = World(key_bits=KEY_BITS)
        server = world.add_peer("Server", "freebie(X) <- member(X). member(\"C\").")
        world.add_peer("Mallory")
        world.distribute_keys()
        from repro.datalog.parser import parse_goals

        server.unipro.register_from_kb(
            server.kb, "freebie", 1,
            protection=parse_goals('ok(Requester) @ Requester'))
        request = PolicyRequestMessage(sender="Mallory", receiver="Server",
                                       session_id="s-up4", policy_name="freebie")
        assert not server.handle(request).granted


class TestSessionAdoption:
    def test_adopt_session_credentials(self):
        from repro.negotiation.strategies import parsimonious_negotiate

        world = World(key_bits=KEY_BITS)
        server = world.add_peer("Server", """
            vouched(X) <-{true} cert(X) @ "CA".
            cert(X) @ Y $ true <-{true} cert(X) @ Y.
        """)
        client = world.add_peer("Client")
        world.issuer("CA")
        world.distribute_keys()
        world.give_credentials("Server", 'cert("v1") signedBy ["CA"].')
        result = parsimonious_negotiate(client, "Server", parse_literal("vouched(X)"))
        assert result.granted
        added = client.adopt_session_credentials(result.session)
        assert added >= 1
        assert len(client.credentials) >= 1
