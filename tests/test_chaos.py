"""Chaos suite: full negotiations under seeded network faults.

Runs the paper's scenarios over a transport with a deterministic
:class:`repro.net.faults.FaultPlan` and checks the robustness contract:

- moderate chaos (drops + duplicates) is absorbed by retries and the paper
  outcomes still hold;
- total chaos (100% drop) terminates with a clean, classified failure —
  no hang, no escaping exception, no stranded ``in_flight`` entries;
- corruption never admits an unverified credential into any session
  overlay;
- scheduled crash windows are outlasted by patient retry policies;
- deadline budgets convert exhaustion into a clean "deadline" outcome.

``CHAOS_SEED`` (env, default 1337) selects the replayable fault stream, so
CI can pin a seed while local runs can explore others.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import World, negotiate, parse_literal
from repro.credentials.credential import verify_credential
from repro.errors import SignatureError
from repro.net.faults import FaultPlan, uniform_plan
from repro.net.transport import RetryPolicy
from repro.scenarios.elena_network import build_elena_network

KEY_BITS = 512
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "1337"))

PATIENT = RetryPolicy(max_attempts=6, base_delay_ms=2.0, multiplier=2.0,
                      max_delay_ms=50.0, jitter_ms=0.5)


def overlay_credentials_all_verify(session, world):
    """Every credential in every per-peer overlay of ``session`` verifies
    against that peer's keyring — the no-unverified-material invariant."""
    for peer_name, peer in world.peers.items():
        for credential in session.received_for(peer_name).credentials():
            verify_credential(credential, peer.keyring)  # raises on tamper
    return True


@pytest.fixture()
def network():
    return build_elena_network(key_bits=KEY_BITS)


class TestModerateChaos:
    """10% drop + 10% duplication: retries absorb the weather and the
    paper's §3/§4 outcomes still hold."""

    def test_alice_free_enrollment_survives(self, network):
        network.world.inject_faults(
            uniform_plan(seed=CHAOS_SEED, drop=0.1, duplicate=0.1))
        network.world.set_retry(PATIENT)
        result = negotiate(network.alice, "E-Learn",
                           parse_literal('enroll(spanish205, "Alice")'))
        assert result.granted
        assert not result.session.in_flight
        assert overlay_credentials_all_verify(result.session, network.world)

    def test_bob_brokered_enrollment_survives(self, network):
        network.world.inject_faults(
            uniform_plan(seed=CHAOS_SEED, drop=0.1, duplicate=0.1))
        network.world.set_retry(PATIENT)
        result = negotiate(network.bob, "E-Learn",
                           parse_literal('enroll(cs411, "Bob")'))
        assert result.granted
        assert not result.session.in_flight

    def test_chaos_was_actually_injected(self, network):
        plan = uniform_plan(seed=CHAOS_SEED, drop=0.1, duplicate=0.1)
        network.world.inject_faults(plan)
        network.world.set_retry(PATIENT)
        negotiate(network.alice, "E-Learn",
                  parse_literal('enroll(spanish205, "Alice")'))
        negotiate(network.bob, "E-Learn", parse_literal('enroll(cs411, "Bob")'))
        # The runs above must have seen real faults, or the suite proves
        # nothing: the plan's own stats disambiguate.
        assert plan.stats["drops"] + plan.stats["duplicates"] >= 1

    def test_same_seed_replays_same_traffic(self):
        costs = []
        for _ in range(2):
            net = build_elena_network(key_bits=KEY_BITS)
            net.world.inject_faults(
                uniform_plan(seed=CHAOS_SEED, drop=0.15, duplicate=0.1))
            net.world.set_retry(PATIENT)
            result = negotiate(net.alice, "E-Learn",
                               parse_literal('enroll(spanish205, "Alice")'))
            costs.append((result.granted, net.world.stats.messages,
                          net.world.stats.dropped,
                          round(net.world.stats.simulated_ms, 6)))
        assert costs[0] == costs[1]


class TestTotalChaos:
    """100% drop: the negotiation must terminate promptly and cleanly."""

    def test_clean_failure_no_exception_no_leak(self, network):
        network.world.inject_faults(uniform_plan(seed=CHAOS_SEED, drop=1.0))
        network.world.set_retry(RetryPolicy(max_attempts=3, jitter_ms=0.0))
        result = negotiate(network.alice, "E-Learn",
                           parse_literal('enroll(spanish205, "Alice")'))
        assert not result.granted
        assert result.failure_kind == "network"
        assert "retries" in result.failure_reason
        assert not result.session.in_flight
        assert result.session.counters["in_flight_leaked"] == 0
        # The session was evicted from the transport table.
        assert network.world.transport.sessions.get(result.session.id) is None

    def test_eager_strategy_also_terminates(self, network):
        network.world.inject_faults(uniform_plan(seed=CHAOS_SEED, drop=1.0))
        network.world.set_retry(RetryPolicy(max_attempts=2, jitter_ms=0.0))
        result = negotiate(network.alice, "E-Learn",
                           parse_literal('enroll(spanish205, "Alice")'),
                           strategy="eager")
        assert not result.granted
        assert result.failure_kind in ("denied", "network")
        assert result.session.counters["lost_disclosures"] >= 1
        assert not result.session.in_flight


class TestCorruption:
    """Tampered payloads are rejected by verification; nothing unverified
    ever enters a session overlay (the answer set can only shrink)."""

    def test_no_unverified_credential_admitted(self, network):
        from repro.net.faults import FaultRule

        # Corrupt every *reply*: queries still flow, so the negotiation
        # actually exchanges (tampered) credentials before failing.
        network.world.inject_faults(FaultPlan(
            seed=CHAOS_SEED,
            rules=(FaultRule(kind="AnswerMessage", corrupt=1.0),)))
        result = negotiate(network.alice, "E-Learn",
                           parse_literal('enroll(spanish205, "Alice")'))
        # Alice's student/membership disclosures arrive with flipped
        # signature bytes, fail verification at E-Learn, and the free-course
        # path cannot hold.
        assert not result.granted
        assert result.session.counters["bad_credentials"] >= 1
        assert overlay_credentials_all_verify(result.session, network.world)
        assert not result.session.in_flight

    def test_fully_corrupt_link_aborts_cleanly(self, network):
        # Even the initial query is damaged: the edge detects it and the
        # driver converts the deterministic failure into a clean outcome.
        network.world.inject_faults(uniform_plan(seed=CHAOS_SEED, corrupt=1.0))
        result = negotiate(network.alice, "E-Learn",
                           parse_literal('enroll(spanish205, "Alice")'))
        assert not result.granted
        assert result.failure_kind == "corrupt"
        assert not result.session.in_flight

    def test_partial_corruption_still_only_shrinks(self, network):
        network.world.inject_faults(uniform_plan(seed=CHAOS_SEED, corrupt=0.3))
        network.world.set_retry(PATIENT)
        result = negotiate(network.alice, "E-Learn",
                           parse_literal('enroll(spanish205, "Alice")'))
        # Whatever the outcome at this corruption rate, the invariants hold.
        assert overlay_credentials_all_verify(result.session, network.world)
        assert not result.session.in_flight


class TestCrashRestart:
    def _quickstart(self):
        world = World(key_bits=KEY_BITS)
        world.add_peer("Server",
                       'hello(Requester) $ true <- '
                       'friend(Requester) @ "CA" @ Requester.')
        client = world.add_peer(
            "Client", 'friend(X) @ Y $ true <-{true} friend(X) @ Y.')
        world.issuer("CA")
        world.distribute_keys()
        world.give_credentials("Client", 'friend("Client") signedBy ["CA"].')
        return world, client

    def test_patient_retry_outlasts_server_outage(self):
        world, client = self._quickstart()
        world.inject_faults(FaultPlan(seed=CHAOS_SEED).crash("Server", 0.0, 20.0))
        world.set_retry(RetryPolicy(max_attempts=5, base_delay_ms=10.0,
                                    multiplier=2.0, jitter_ms=0.0))
        result = negotiate(client, "Server", parse_literal('hello("Client")'))
        assert result.granted
        assert world.stats.retries >= 1
        assert world.transport.faults.stats["crash_drops"] >= 1

    def test_impatient_client_fails_during_outage(self):
        world, client = self._quickstart()
        world.inject_faults(FaultPlan(seed=CHAOS_SEED).crash("Server", 0.0, 20.0))
        result = negotiate(client, "Server", parse_literal('hello("Client")'))
        assert not result.granted
        assert result.failure_kind == "network"
        assert not result.session.in_flight


class TestCrashRecoveryWindows:
    """Crash windows are *survivable* when the peer has a state store: the
    fleet converges to the same outcomes as a fault-free run, and restarted
    peers come back with their disclosure ledgers warm."""

    STAGGER_MS = 5.0
    # Client1's negotiation spans [5.0, ~9.5) simulated ms at this stagger;
    # the window kills it mid-negotiation and restarts at 7.0.
    CRASH_AT, CRASH_UNTIL = 5.0, 7.0

    def _fleet_outcomes(self, attach=None):
        from repro.storage.recovery import schedule_crash_restart
        from repro.workloads.generator import build_bilateral_fleet

        fleet = build_bilateral_fleet(3, key_bits=KEY_BITS)
        if attach is not None:
            attach(fleet.world)
        fleet.world.set_retry(PATIENT)
        schedule_crash_restart(fleet.world.transport, "Client1",
                               self.CRASH_AT, self.CRASH_UNTIL)
        report = fleet.run_interleaved(stagger_ms=self.STAGGER_MS)
        return fleet, report

    def test_baseline_fleet_grants_everything(self):
        from repro.workloads.generator import build_bilateral_fleet

        fleet = build_bilateral_fleet(3, key_bits=KEY_BITS)
        report = fleet.run_interleaved(stagger_ms=self.STAGGER_MS)
        assert [r.granted for r in report.results] == [True, True, True]

    def test_warm_restart_converges_to_fault_free_outcomes(self, attach_stores):
        fleet, report = self._fleet_outcomes(attach=attach_stores)
        # Same outcomes as the no-crash run: the mid-fleet outage was
        # absorbed by patient retries + restart-from-store.
        assert [r.granted for r in report.results] == [True, True, True]
        assert fleet.world.transport.faults.stats["crash_drops"] >= 1
        crashed = report.results[1]
        assert crashed.session.counters["retries"] >= 1

    def test_cold_restart_loses_the_crashed_negotiation(self):
        _, report = self._fleet_outcomes(attach=None)
        # Without a store the restarted client's wallet is gone, so its
        # negotiation fails while the uninvolved pairs are untouched —
        # proving the teardown is real, not cosmetic.
        assert [r.granted for r in report.results] == [True, False, True]

    def _delta_rounds(self, warm: bool, attach=None):
        from repro.datalog.parser import parse_literal
        from repro.net.message import QueryMessage
        from repro.scenarios.services import build_scenario2
        from repro.storage.recovery import restart_peer

        scenario = build_scenario2(key_bits=KEY_BITS)
        transport = scenario.world.transport
        transport.disclosure_deltas = True
        if warm:
            attach(scenario.world)
        session = transport.sessions.get_or_create(
            "repeat-session", "Bob", scenario.bob.max_nesting)
        goal = parse_literal('enroll(cs101, "Bob", Company, Email, 0)')
        replies = []
        for round_index in range(2):
            if round_index == 1:
                restart_peer(transport, "E-Learn")
            replies.append(transport.request(QueryMessage(
                sender="Bob", receiver="E-Learn", session_id=session.id,
                goal=goal)))
        return replies, session

    def test_restarted_peer_reuses_warm_disclosure_deltas(self, attach_stores):
        warm_replies, warm_session = self._delta_rounds(
            warm=True, attach=attach_stores)
        cold_replies, _ = self._delta_rounds(warm=False)
        # Warm: the restored wire ledger lets the repeat answer travel as a
        # hash reference.  Cold: the restarted peer must re-ship the full
        # payload.
        assert warm_replies[1].items[0].answer_credential_ref is not None
        assert cold_replies[1].items[0].answer_credential_ref is None
        assert warm_replies[1].wire_size() < cold_replies[1].wire_size()
        assert warm_session.counters["delta_refs_sent"] >= 1


class TestRecoveryLoopState:
    """A restarted peer has no suspended evaluations, so restart must not
    resurrect the dead process's loop-detection or tabling residue: phantom
    ``in_flight`` markers would make the peer's next query on the same goal
    look re-entrant (silently pruned), and phantom ACTIVE tables would serve
    subscriptions nothing is evaluating."""

    def _session_with_residue(self, attach=None):
        from repro.workloads.generator import build_bilateral_fleet

        fleet = build_bilateral_fleet(2, key_bits=KEY_BITS)
        if attach is not None:
            attach(fleet.world)
        transport = fleet.world.transport
        session = transport.sessions.get_or_create(
            "residue-session", "Client0", 30)
        goal_key = ("member", 1)
        session.enter_remote("Client0", "Server0", goal_key)
        session.enter_remote("Server0", "Server1", goal_key)
        session.activate_table("Client0", goal_key)
        session.activate_table("Server0", goal_key)
        return transport, session, goal_key

    def test_crash_discards_phantom_in_flight_and_tables(self):
        from repro.storage.recovery import crash_peer

        transport, session, goal_key = self._session_with_residue()
        crash_peer(transport, "Client0")
        # The crashed asker's marker and table are gone; an unrelated
        # peer's survive (its evaluation is still genuinely suspended).
        assert ("Client0", "Server0", goal_key) not in session.in_flight
        assert ("Server0", "Server1", goal_key) in session.in_flight
        assert session.table_for("Client0", goal_key) is None
        assert session.table_for("Server0", goal_key) is not None
        # The goal is queryable again, not phantom-pruned.
        assert session.enter_remote("Client0", "Server0", goal_key)
        assert session.counters.get("loops_detected", 0) == 0

    def test_warm_recovery_does_not_restore_residue(self, attach_stores):
        from repro.storage.recovery import restart_peer

        transport, session, goal_key = self._session_with_residue(
            attach=attach_stores)
        report = restart_peer(transport, "Client0")
        assert report.warm
        assert ("Client0", "Server0", goal_key) not in session.in_flight
        assert session.table_for("Client0", goal_key) is None


class TestDeadlines:
    def test_deadline_exhaustion_is_a_clean_outcome(self, network):
        # A tiny budget expires partway into the nested counter-queries.
        result = negotiate(network.alice, "E-Learn",
                           parse_literal('enroll(spanish205, "Alice")'),
                           deadline_ms=2.5)
        assert not result.granted
        assert result.failure_kind == "deadline"
        assert result.session.counters["deadline_exceeded"] >= 1
        assert any(e.kind == "deadline" for e in result.session.transcript)
        assert not result.session.in_flight

    def test_generous_deadline_does_not_interfere(self, network):
        result = negotiate(network.alice, "E-Learn",
                           parse_literal('enroll(spanish205, "Alice")'),
                           deadline_ms=100000.0)
        assert result.granted

    def test_peer_default_deadline_applies(self):
        world = World(key_bits=KEY_BITS)
        world.add_peer("Server", "open(1) <-{true} true.")
        client = world.add_peer("Client", deadline_ms=0.0)
        world.distribute_keys()
        result = negotiate(client, "Server", parse_literal("open(1)"))
        assert not result.granted
        assert result.failure_kind == "deadline"


# ---------------------------------------------------------------------------
# Property: negotiations never strand in-flight state or admit unverified
# material, whatever the weather.
# ---------------------------------------------------------------------------

SEEDS = st.integers(min_value=0, max_value=100_000)
DROPS = st.sampled_from([0.0, 0.2, 0.5, 1.0])


class TestChaosProperties:
    @given(seed=SEEDS, drop=DROPS)
    @settings(max_examples=12, deadline=None)
    def test_in_flight_always_empty_and_overlays_verified(self, seed, drop):
        from repro.workloads.generator import build_random_bilateral

        workload = build_random_bilateral(seed, key_bits=KEY_BITS)
        workload.world.inject_faults(
            uniform_plan(seed=seed, drop=drop, duplicate=0.2, corrupt=0.1))
        workload.world.set_retry(RetryPolicy(max_attempts=3, jitter_ms=0.5))
        result = workload.run()
        assert not result.session.in_flight
        assert result.session.counters["in_flight_leaked"] == 0
        assert overlay_credentials_all_verify(result.session, workload.world)
        # Clean classification: granted XOR a failure kind is recorded.
        assert result.granted == (result.failure_kind == "")

    @given(seed=SEEDS)
    @settings(max_examples=8, deadline=None)
    def test_zero_deadline_never_escapes(self, seed):
        from repro.workloads.generator import build_random_bilateral

        workload = build_random_bilateral(seed, key_bits=KEY_BITS)
        result = negotiate(
            workload.requester, workload.provider_name, workload.goal,
            deadline_ms=0.0)
        assert not result.granted
        assert result.failure_kind == "deadline"
        assert not result.session.in_flight
