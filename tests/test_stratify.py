"""Dependency-graph and stratification tests."""

import pytest

from repro.datalog.parser import parse_program
from repro.datalog.stratify import DependencyGraph, is_stratified, stratify
from repro.errors import StratificationError


def strata_of(source):
    return stratify(parse_program(source))


class TestDependencyGraph:
    def test_positive_edges(self):
        graph = DependencyGraph(parse_program("a(X) <- b(X), c(X)."))
        assert graph.positive[("a", 1)] == {("b", 1), ("c", 1)}

    def test_negative_edges(self):
        graph = DependencyGraph(parse_program("a(X) <- b(X), not c(X)."))
        assert graph.negative[("a", 1)] == {("c", 1)}

    def test_comparisons_excluded(self):
        graph = DependencyGraph(parse_program("a(X) <- b(X), X < 3."))
        assert ("<", 2) not in graph.nodes

    def test_is_recursive(self):
        graph = DependencyGraph(parse_program(
            "p(X) <- q(X). q(X) <- p(X). r(X) <- q(X)."))
        assert graph.is_recursive(("p", 1))
        assert graph.is_recursive(("q", 1))
        assert not graph.is_recursive(("r", 1))

    def test_sccs(self):
        graph = DependencyGraph(parse_program(
            "p(X) <- q(X). q(X) <- p(X). r(X) <- q(X)."))
        components = graph.strongly_connected_components()
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2]

    def test_deep_chain_does_not_overflow(self):
        rules = " ".join(f"p{i}(X) <- p{i + 1}(X)." for i in range(500))
        rules += " p500(1)."
        graph = DependencyGraph(parse_program(rules))
        assert len(graph.strongly_connected_components()) == 501


class TestStratification:
    def test_positive_program_single_stratum(self):
        layers = strata_of("a(X) <- b(X). b(1).")
        assert len(layers) == 1

    def test_negation_splits_strata(self):
        layers = strata_of("a(X) <- b(X), not c(X). b(1). c(1).")
        assert len(layers) == 2
        assert ("c", 1) in layers[0]
        assert ("a", 1) in layers[1]

    def test_chained_negations_stack(self):
        layers = strata_of("""
        a(X) <- b(X), not c(X).
        c(X) <- d(X), not e(X).
        b(1). d(1). e(1).
        """)
        index = {node: i for i, layer in enumerate(layers) for node in layer}
        assert index[("e", 1)] < index[("c", 1)] < index[("a", 1)]

    def test_recursion_through_negation_rejected(self):
        with pytest.raises(StratificationError):
            strata_of("p(X) <- r(X), not q(X). q(X) <- r(X), not p(X). r(1).")

    def test_self_negation_rejected(self):
        with pytest.raises(StratificationError):
            strata_of("p(X) <- r(X), not p(X). r(1).")

    def test_positive_recursion_allowed(self):
        layers = strata_of("p(X) <- q(X). q(X) <- p(X). p(1).")
        assert len(layers) == 1

    def test_is_stratified_helper(self):
        assert is_stratified(parse_program("a(X) <- not b(X), c(X). c(1). b(2)."))
        assert not is_stratified(parse_program(
            "p(X) <- r(X), not p(X). r(1)."))
