"""Super-peer routing substrate tests."""

import pytest

from repro.datalog.parser import parse_literal
from repro.errors import NetworkError
from repro.negotiation.strategies import negotiate
from repro.net.superpeer import SuperPeerNetwork, hamming_distance
from repro.world import World

KEY_BITS = 512


def build_world(peer_count=4, superpeers=4):
    world = World(key_bits=KEY_BITS)
    server = world.add_peer("Server",
                            'resource(Requester) $ true <- '
                            'token(Requester) @ "CA" @ Requester.')
    clients = [world.add_peer(f"Client{i}",
                              'token(X) @ Y $ true <-{true} token(X) @ Y.')
               for i in range(peer_count - 1)]
    world.issuer("CA")
    world.distribute_keys()
    for client in clients:
        world.give_credentials(client.name,
                               f'token("{client.name}") signedBy ["CA"].')
    network = SuperPeerNetwork(world, superpeer_count=superpeers)
    return world, network, server, clients


class TestTopology:
    def test_hamming(self):
        assert hamming_distance(0b000, 0b111) == 3
        assert hamming_distance(5, 5) == 0

    def test_dimension_rounds_up(self):
        world = World(key_bits=KEY_BITS)
        network = SuperPeerNetwork(world, superpeer_count=5)
        assert network.superpeer_count == 8
        assert network.dimension == 3

    def test_single_superpeer(self):
        world = World(key_bits=KEY_BITS)
        world.add_peer("A")
        world.add_peer("B")
        network = SuperPeerNetwork(world, superpeer_count=1)
        assert network.hops("A", "B") == 2  # up and down the same SP

    def test_round_robin_assignment(self):
        world, network, server, clients = build_world(peer_count=5, superpeers=4)
        assignments = {network.superpeer_of(p) for p in world.peers}
        assert len(assignments) >= 2

    def test_hops_zero_for_self(self):
        world, network, *_ = build_world()
        assert network.hops("Server", "Server") == 0

    def test_route_is_valid_hypercube_walk(self):
        world = World(key_bits=KEY_BITS)
        a = world.add_peer("A")
        b = world.add_peer("B")
        network = SuperPeerNetwork(world, superpeer_count=8)
        network.assign("A", 0b000)
        network.assign("B", 0b101)
        route = network.route("A", "B")
        assert route[0] == "A" and route[-1] == "B"
        # hop count matches route length: endpoints + super-peer chain
        assert len(route) - 2 == network.hops("A", "B") - 1

    def test_unattached_peer_raises(self):
        world, network, *_ = build_world()
        with pytest.raises(NetworkError):
            network.superpeer_of("Ghost")

    def test_bad_superpeer_index(self):
        world, network, *_ = build_world()
        with pytest.raises(NetworkError):
            network.assign("Server", superpeer=99)


class TestLatencyIntegration:
    def test_distance_shows_in_simulated_time(self):
        world = World(key_bits=KEY_BITS)
        server = world.add_peer("Server", "ping(X) <-{true} known(X). known(1).")
        near = world.add_peer("Near")
        far = world.add_peer("Far")
        world.distribute_keys()
        network = SuperPeerNetwork(world, superpeer_count=8, hop_latency_ms=5.0)
        network.assign("Server", 0b000)
        network.assign("Near", 0b000)   # same super-peer
        network.assign("Far", 0b111)    # 3 cube hops away

        world.reset_metrics()
        negotiate(near, "Server", parse_literal("ping(1)"))
        near_ms = world.stats.simulated_ms
        world.reset_metrics()
        negotiate(far, "Server", parse_literal("ping(1)"))
        far_ms = world.stats.simulated_ms
        assert far_ms > near_ms

    def test_negotiation_still_works_through_cube(self):
        world, network, server, clients = build_world(peer_count=6, superpeers=8)
        client = clients[0]
        result = negotiate(client, "Server",
                           parse_literal(f'resource("{client.name}")'))
        assert result.granted
        assert network.total_hops() > 0

    def test_hop_log_resets(self):
        world, network, server, clients = build_world()
        negotiate(clients[0], "Server",
                  parse_literal(f'resource("{clients[0].name}")'))
        assert network.hop_log
        network.reset_hop_log()
        assert not network.hop_log


class TestRoutingIndices:
    def test_advertise_and_locate(self):
        world, network, server, clients = build_world()
        network.advertise("Server", ["resource"])
        assert network.locate("resource") == ["Server"]
        assert network.locate("nonexistent") == []

    def test_locate_orders_by_distance(self):
        world = World(key_bits=KEY_BITS)
        for name in ("Asker", "ProviderNear", "ProviderFar"):
            world.add_peer(name)
        network = SuperPeerNetwork(world, superpeer_count=8)
        network.assign("Asker", 0b000)
        network.assign("ProviderNear", 0b001)
        network.assign("ProviderFar", 0b111)
        network.advertise("ProviderNear", ["wisdom"])
        network.advertise("ProviderFar", ["wisdom"])
        assert network.locate("wisdom", near="Asker") == [
            "ProviderNear", "ProviderFar"]

    def test_advertise_from_kb_uses_release_policies(self):
        world, network, server, clients = build_world()
        network.advertise_from_kb("Server")
        assert "Server" in network.locate("resource")
        network.advertise_from_kb(clients[0].name)
        assert clients[0].name in network.locate("token")

    def test_withdraw(self):
        world, network, server, clients = build_world()
        network.advertise("Server", ["resource", "extra"])
        network.withdraw("Server", ["resource"])
        assert network.locate("resource") == []
        assert network.locate("extra") == ["Server"]
        network.withdraw("Server")
        assert network.locate("extra") == []

    def test_locate_enables_brokerless_discovery(self):
        """A peer can find an authority through the routing index and then
        negotiate with it directly."""
        world, network, server, clients = build_world()
        network.advertise_from_kb("Server")
        [provider_name] = network.locate("resource", near=clients[0].name)
        result = negotiate(clients[0], provider_name,
                           parse_literal(f'resource("{clients[0].name}")'))
        assert result.granted
