"""Broker-directory helper and simulated-clock tests."""

import pytest

from repro.datalog.parser import parse_literal
from repro.negotiation.strategies import negotiate
from repro.net.broker import BrokerDirectory, broker_program
from repro.world import World

KEY_BITS = 512


class TestBrokerProgram:
    def test_program_shape(self):
        source = broker_program({"purchaseApproved": "VISA",
                                 "weather": ["NOAA", "MetOffice"]})
        assert 'authority(purchaseApproved, "VISA").' in source
        assert 'authority(weather, "NOAA").' in source
        assert "$ true" in source

    def test_empty_directory(self):
        source = broker_program({})
        assert "$ true" in source


class TestBrokerDirectory:
    def build(self):
        world = World(key_bits=KEY_BITS)
        broker = BrokerDirectory.create(
            world, directory={"purchaseApproved": "VISA"})
        asker = world.add_peer("Asker")
        world.distribute_keys()
        return world, broker, asker

    def test_lookup_through_negotiation(self):
        world, broker, asker = self.build()
        result = negotiate(asker, "myBroker",
                           parse_literal("authority(purchaseApproved, A)"))
        assert result.granted
        assert str(result.binding("A")) == '"VISA"'

    def test_register_and_unregister(self):
        world, broker, asker = self.build()
        broker.register("weather", "NOAA")
        broker.register("weather", "NOAA")  # idempotent
        assert broker.authorities_for("weather") == ["NOAA"]
        assert broker.topics() == ["purchaseApproved", "weather"]
        assert broker.unregister("weather", "NOAA")
        assert not broker.unregister("weather", "NOAA")
        assert broker.authorities_for("weather") == []

    def test_multiple_authorities(self):
        world, broker, asker = self.build()
        broker.register("purchaseApproved", "MasterCard")
        result = negotiate(asker, "myBroker",
                           parse_literal("authority(purchaseApproved, A)"))
        found = {str(lit.args[1]) for lit, _ in result.answers}
        assert found == {'"VISA"', '"MasterCard"'}


class TestSimulatedClock:
    def build(self, provider_clock):
        world = World(key_bits=KEY_BITS)
        server = world.add_peer("Server", (
            'resource(Requester) $ true <- '
            'pass(Requester) @ "Gate" @ Requester.'))
        client = world.add_peer("Client",
                                'pass(X) @ Y $ true <-{true} pass(X) @ Y.')
        world.issuer("Gate")
        world.distribute_keys()
        credential = world.credential('pass("Client") signedBy ["Gate"].',
                                      not_before=100.0, not_after=200.0)
        client.clock = 150.0  # within window, so the client can hold it
        client.hold_credential(credential)
        server.clock = provider_clock
        return world, server, client

    def test_valid_window_grants(self):
        world, server, client = self.build(provider_clock=150.0)
        result = negotiate(client, "Server", parse_literal('resource("Client")'))
        assert result.granted

    def test_expired_at_verifier_denies(self):
        world, server, client = self.build(provider_clock=250.0)
        result = negotiate(client, "Server", parse_literal('resource("Client")'))
        assert not result.granted
        assert result.session.counters["bad_credentials"] >= 1

    def test_not_yet_valid_at_verifier_denies(self):
        world, server, client = self.build(provider_clock=50.0)
        result = negotiate(client, "Server", parse_literal('resource("Client")'))
        assert not result.granted

    def test_holder_cannot_hold_expired(self):
        from repro.errors import ExpiredCredentialError

        world = World(key_bits=KEY_BITS)
        holder = world.add_peer("Holder")
        world.issuer("Gate")
        world.distribute_keys()
        credential = world.credential('pass("H") signedBy ["Gate"].',
                                      not_after=10.0)
        holder.clock = 20.0
        with pytest.raises(ExpiredCredentialError):
            holder.hold_credential(credential)
