"""Magic-set rewriting tests: equivalence and relevance restriction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.magic import magic_query, magic_transform
from repro.datalog.parser import parse_literal, parse_program
from repro.datalog.seminaive import seminaive_fixpoint
from repro.errors import EvaluationError

TRANSITIVE = """
edge(a, b). edge(b, c). edge(c, d).
edge(x, y). edge(y, z).
path(X, Y) <- edge(X, Y).
path(X, Y) <- edge(X, Z), path(Z, Y).
"""


class TestEquivalence:
    def test_bound_free_query(self):
        answers = magic_query(parse_program(TRANSITIVE),
                              parse_literal("path(a, W)"))
        assert {str(a) for a in answers} == {"path(a, b)", "path(a, c)", "path(a, d)"}

    def test_bound_bound_query(self):
        assert magic_query(parse_program(TRANSITIVE), parse_literal("path(a, d)"))
        assert not magic_query(parse_program(TRANSITIVE), parse_literal("path(a, z)"))

    def test_free_free_query_matches_full_fixpoint(self):
        program = parse_program(TRANSITIVE)
        answers = {str(a) for a in magic_query(program, parse_literal("path(U, V)"))}
        full = seminaive_fixpoint(program)
        expected = {str(f) for f in full.facts if f.predicate == "path"}
        assert answers == expected

    def test_edb_query_passthrough(self):
        answers = magic_query(parse_program(TRANSITIVE), parse_literal("edge(a, W)"))
        assert {str(a) for a in answers} == {"edge(a, b)"}


class TestRelevance:
    def test_magic_avoids_unreachable_component(self):
        """With the query bound to 'a', the x/y/z component is irrelevant:
        the magic program derives strictly fewer path facts."""
        program = parse_program(TRANSITIVE)
        magic = magic_transform(program, parse_literal("path(a, W)"))
        restricted = magic.evaluate()
        adorned_paths = [
            f for f in restricted.facts if f.predicate.startswith("path$")
        ]
        full = seminaive_fixpoint(program)
        full_paths = [f for f in full.facts if f.predicate == "path"]
        assert len(adorned_paths) < len(full_paths)

    def test_seed_has_query_constant(self):
        magic = magic_transform(parse_program(TRANSITIVE),
                                parse_literal("path(a, W)"))
        assert "a" in str(magic.seed)


class TestWithBuiltins:
    def test_comparison_in_body(self):
        program = parse_program("""
        price(a, 100). price(b, 900). price(c, 5000).
        link(a, b). link(b, c).
        reachCheap(X, Y) <- link(X, Y), price(Y, P), P < 1000.
        reachCheap(X, Y) <- link(X, Z), reachCheap(Z, Y).
        """)
        answers = magic_query(program, parse_literal("reachCheap(a, W)"))
        assert {str(a) for a in answers} == {"reachCheap(a, b)"}


class TestErrors:
    def test_negation_rejected(self):
        with pytest.raises(EvaluationError):
            magic_transform(parse_program("p(X) <- q(X), not r(X). q(1)."),
                            parse_literal("p(W)"))

    def test_authority_chain_rejected(self):
        with pytest.raises(EvaluationError):
            magic_transform(parse_program('p(X) <- q(X) @ "A". q(1).'),
                            parse_literal("p(W)"))

    def test_compound_query_argument_is_free_adorned(self):
        # A compound containing a variable adorns as free: no seed error,
        # evaluation falls back to full relevant derivation.
        answers = magic_query(parse_program("p(X) <- q(X). q(1)."),
                              parse_literal("p(W)"))
        assert {str(a) for a in answers} == {"p(1)"}


@given(st.lists(
    st.tuples(st.sampled_from("abcd"), st.sampled_from("abcd")),
    min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_property_magic_agrees_with_fixpoint(edges):
    text = " ".join(f"edge({s}, {t})." for s, t in sorted(set(edges)))
    text += (" path(X, Y) <- edge(X, Y)."
             " path(X, Y) <- edge(X, Z), path(Z, Y).")
    program = parse_program(text)
    start = edges[0][0]
    magic_answers = {
        str(a) for a in magic_query(program, parse_literal(f"path({start}, W)"))
    }
    full = seminaive_fixpoint(program)
    expected = {
        str(f) for f in full.facts
        if f.predicate == "path" and str(f.args[0]) == start
    }
    assert magic_answers == expected
