"""Autonomy and information-leak analysis tests (§6 extension)."""

import pytest

from repro.datalog.parser import parse_literal
from repro.negotiation.analysis import (
    behaviour_leak_probe,
    critical_credentials,
    refusal_analysis,
)
from repro.workloads.generator import (
    Workload,
    build_alternating_chain,
    build_delegation_chain,
    build_peer_ring,
)
from repro.world import World

KEY_BITS = 512


def two_path_workload() -> Workload:
    """A resource reachable through either of two independent credentials —
    each alone is non-critical."""
    world = World(key_bits=KEY_BITS)
    server = world.add_peer("Server", """
        resource(Requester) $ true <- cA(Requester) @ "CAA" @ Requester.
        resource(Requester) $ true <- cB(Requester) @ "CAB" @ Requester.
    """)
    client = world.add_peer("Client", """
        cA(X) @ Y $ true <-{true} cA(X) @ Y.
        cB(X) @ Y $ true <-{true} cB(X) @ Y.
    """)
    world.issuer("CAA")
    world.issuer("CAB")
    world.distribute_keys()
    world.give_credentials("Client", '''
        cA("Client") signedBy ["CAA"].
        cB("Client") signedBy ["CAB"].
    ''')
    return Workload(world, client, "Server",
                    parse_literal('resource("Client")'),
                    description="two independent paths")


class TestCriticalCredentials:
    def test_chain_credentials_all_critical(self):
        reports = critical_credentials(
            lambda: build_delegation_chain(3, key_bits=KEY_BITS))
        assert len(reports) == 3
        assert all(r.critical for r in reports)

    def test_redundant_paths_are_slack(self):
        reports = critical_credentials(two_path_workload)
        assert len(reports) == 2
        assert not any(r.critical for r in reports)

    def test_failing_baseline_rejected(self):
        from repro.workloads.generator import build_cyclic_release

        with pytest.raises(ValueError):
            critical_credentials(lambda: build_cyclic_release(key_bits=KEY_BITS))

    def test_provider_side_analysis(self):
        """The server's counter-credentials in an alternating chain are all
        critical too."""
        reports = critical_credentials(
            lambda: build_alternating_chain(3, key_bits=KEY_BITS),
            peer_name="Server")
        assert len(reports) == 2  # s1, s2
        assert all(r.critical for r in reports)

    def test_report_fields(self):
        [report, *_] = critical_credentials(
            lambda: build_delegation_chain(2, key_bits=KEY_BITS))
        assert report.head and report.issuer and report.serial


class TestRefusalAnalysis:
    def test_ring_members_are_all_obligatory(self):
        impacts = refusal_analysis(
            lambda: build_peer_ring(4, key_bits=KEY_BITS))
        breaking = [i for i in impacts if i.breaks_negotiation]
        assert breaking  # every hop's vouch is needed
        assert all(i.peer.startswith("P") for i in breaking)

    def test_chain_refusals(self):
        impacts = refusal_analysis(
            lambda: build_alternating_chain(2, key_bits=KEY_BITS))
        assert impacts
        # The client's refusal to answer credential queries breaks things.
        assert any(i.breaks_negotiation for i in impacts)

    def test_impact_fields(self):
        impacts = refusal_analysis(
            lambda: build_delegation_chain(2, key_bits=KEY_BITS))
        assert all(i.predicate and i.arity >= 0 for i in impacts)


class TestBehaviourLeakProbe:
    def _cannot(self) -> Workload:
        """Provider genuinely cannot derive (client lacks the credential)."""
        workload = build_delegation_chain(2, key_bits=KEY_BITS)
        for credential in list(workload.requester.credentials.credentials()):
            workload.requester.credentials.remove(credential.serial)
        workload.expect_success = False
        return workload

    def _willnot(self) -> Workload:
        """Client has the credential but refuses to release it."""
        workload = build_delegation_chain(2, key_bits=KEY_BITS)
        from repro.datalog.parser import parse_rule

        workload.requester.kb.remove(
            parse_rule('member(X) @ Y $ true <-{true} member(X) @ Y.'))
        workload.expect_success = False
        return workload

    def _willnot_with_counterquery(self) -> Workload:
        """Client has the credential but its release guard triggers a
        counter-query to the server before failing — behaviour the server
        can distinguish from a flat denial."""
        workload = build_delegation_chain(2, key_bits=KEY_BITS)
        from repro.datalog.parser import parse_rule

        client = workload.requester
        client.kb.remove(
            parse_rule('member(X) @ Y $ true <-{true} member(X) @ Y.'))
        client.kb.load(
            'member(X) @ Y $ vip(Requester) @ "NoSuchCA" @ Requester '
            '<-{true} member(X) @ Y.')
        workload.expect_success = False
        return workload

    def test_flat_denial_does_not_leak(self):
        """An empty failure answer is deliberately ambiguous: 'cannot
        derive' and 'will not release' look identical on the wire."""
        report = behaviour_leak_probe(self._cannot, self._willnot,
                                      observer="Server")
        assert not report.leaks

    def test_counterquery_behaviour_leaks(self):
        """A release guard that fires counter-queries is observable: the
        server can tell this failure apart from a flat denial (the leak the
        paper wants analysed)."""
        report = behaviour_leak_probe(
            self._cannot, self._willnot_with_counterquery, observer="Server")
        assert report.leaks
        assert "event sequence" in report.leaking_channels or \
            "message count" in report.leaking_channels

    def test_identical_failures_do_not_leak(self):
        report = behaviour_leak_probe(self._cannot, self._cannot)
        assert not report.leaks

    def test_probe_requires_failures(self):
        good = lambda: build_delegation_chain(2, key_bits=KEY_BITS)
        with pytest.raises(ValueError):
            behaviour_leak_probe(good, self._cannot)
