"""Shared fixtures.

Key generation dominates setup cost, so everything here uses 512-bit keys
through the process-wide key cache (`repro.crypto.keys.keypair_for`): the
first test to need "Alice"'s key pays for it, the rest reuse it.  512-bit
RSA exercises every code path the 1024-bit default does.
"""

from __future__ import annotations

import pytest

from repro.crypto.keys import keypair_for
from repro.datalog.builtins import BuiltinRegistry
from repro.datalog.knowledge import KnowledgeBase
from repro.datalog.parser import parse_literal, parse_program, parse_rule
from repro.datalog.sld import SLDEngine

KEY_BITS = 512


@pytest.fixture
def kb():
    return KnowledgeBase()


@pytest.fixture
def engine_for():
    """Factory: an SLD engine over a program text."""

    def build(source: str, **options) -> SLDEngine:
        base = KnowledgeBase(parse_program(source))
        return SLDEngine(base, **options)

    return build


@pytest.fixture
def keys_for():
    """Factory for cached 512-bit key pairs."""

    def build(principal: str):
        return keypair_for(principal, KEY_BITS)

    return build


@pytest.fixture
def scenario1():
    from repro.scenarios.elearn import build_scenario1

    return build_scenario1(key_bits=KEY_BITS)


@pytest.fixture
def scenario2():
    from repro.scenarios.services import build_scenario2

    return build_scenario2(key_bits=KEY_BITS)
