"""Shared fixtures.

Key generation dominates setup cost, so everything here uses 512-bit keys
through the process-wide key cache (`repro.crypto.keys.keypair_for`): the
first test to need "Alice"'s key pays for it, the rest reuse it.  512-bit
RSA exercises every code path the 1024-bit default does.
"""

from __future__ import annotations

import pytest

from repro.crypto.keys import keypair_for
from repro.datalog.builtins import BuiltinRegistry
from repro.datalog.knowledge import KnowledgeBase
from repro.datalog.parser import parse_literal, parse_program, parse_rule
from repro.datalog.sld import SLDEngine

KEY_BITS = 512


def pytest_runtest_setup(item):
    """Every test starts with pristine id counters (message, session,
    fresh-variable, store-txn) so id-sensitive assertions cannot depend on
    which tests ran before them.  A hook, not an autouse fixture: fixtures
    trip Hypothesis's function_scoped_fixture health check on @given tests."""
    from repro.determinism import reset_all

    reset_all()


@pytest.fixture
def attach_stores():
    """Factory: attach per-peer state stores to a world, backend selected
    by ``PEERTRUST_STORE_BACKEND`` (default ``memory``) so CI can rerun the
    same suites against the durable backend.  Durable state lands in a
    fresh directory under ``PEERTRUST_STATE_DIR`` (or the system tmpdir)
    and is removed on teardown — the durable CI job asserts the state
    directory is empty afterwards."""
    import os
    import shutil
    import tempfile

    dirs: list[str] = []
    worlds: list = []

    def attach(world, backend: str | None = None, peers=None) -> dict:
        chosen = backend or os.environ.get("PEERTRUST_STORE_BACKEND",
                                           "memory")
        state_dir = None
        if chosen == "durable":
            state_dir = tempfile.mkdtemp(
                prefix="peertrust-state-",
                dir=os.environ.get("PEERTRUST_STATE_DIR"))
            dirs.append(state_dir)
        worlds.append(world)
        return world.attach_state_stores(chosen, state_dir=state_dir,
                                         peers=peers)

    yield attach
    for world in worlds:
        world.detach_state_stores()
    for directory in dirs:
        shutil.rmtree(directory, ignore_errors=True)


@pytest.fixture
def kb():
    return KnowledgeBase()


@pytest.fixture
def engine_for():
    """Factory: an SLD engine over a program text."""

    def build(source: str, **options) -> SLDEngine:
        base = KnowledgeBase(parse_program(source))
        return SLDEngine(base, **options)

    return build


@pytest.fixture
def keys_for():
    """Factory for cached 512-bit key pairs."""

    def build(principal: str):
        return keypair_for(principal, KEY_BITS)

    return build


@pytest.fixture
def scenario1():
    from repro.scenarios.elearn import build_scenario1

    return build_scenario1(key_bits=KEY_BITS)


@pytest.fixture
def scenario2():
    from repro.scenarios.services import build_scenario2

    return build_scenario2(key_bits=KEY_BITS)
