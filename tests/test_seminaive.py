"""Forward-chaining fixpoint tests: naive/semi-naive equivalence,
stratified negation, safety, and agreement with the backward chainer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.knowledge import KnowledgeBase
from repro.datalog.parser import parse_goals, parse_literal, parse_program
from repro.datalog.seminaive import naive_fixpoint, seminaive_fixpoint
from repro.datalog.sld import SLDEngine
from repro.errors import BuiltinError, EvaluationError


def facts_of(result, predicate):
    return {str(f) for f in result.facts if f.predicate == predicate}


TRANSITIVE = """
edge(a, b). edge(b, c). edge(c, d). edge(d, e).
path(X, Y) <- edge(X, Y).
path(X, Y) <- path(X, Z), edge(Z, Y).
"""


class TestFixpointBasics:
    def test_facts_pass_through(self):
        result = seminaive_fixpoint(parse_program("a(1). b(2)."))
        assert facts_of(result, "a") == {"a(1)"}

    def test_transitive_closure(self):
        result = seminaive_fixpoint(parse_program(TRANSITIVE))
        assert len(facts_of(result, "path")) == 10  # C(5,2) ordered pairs

    def test_naive_matches_seminaive(self):
        fast = seminaive_fixpoint(parse_program(TRANSITIVE))
        slow = naive_fixpoint(parse_program(TRANSITIVE))
        assert fast.facts == slow.facts

    def test_seminaive_does_fewer_derivations(self):
        program = parse_program(TRANSITIVE)
        fast = seminaive_fixpoint(program)
        slow = naive_fixpoint(program)
        assert fast.derivations <= slow.derivations

    def test_builtins_in_bodies(self):
        result = seminaive_fixpoint(parse_program(
            "price(a, 100). price(b, 5000). cheap(X) <- price(X, P), P < 1000."))
        assert facts_of(result, "cheap") == {"cheap(a)"}

    def test_authority_chains_in_facts(self):
        result = seminaive_fixpoint(parse_program(
            'student(alice) @ "UIUC". ok(X) <- student(X) @ "UIUC".'))
        assert facts_of(result, "ok") == {"ok(alice)"}

    def test_release_policies_excluded(self):
        result = seminaive_fixpoint(parse_program(
            "r(X) $ true <- a(X). a(1)."))
        assert facts_of(result, "r") == set()

    def test_holds_and_matching(self):
        result = seminaive_fixpoint(parse_program("a(1). a(2)."))
        assert result.holds(parse_literal("a(X)"))
        assert len(result.matching(parse_literal("a(X)"))) == 2
        assert not result.holds(parse_literal("a(3)"))

    def test_by_predicate_grouping(self):
        result = seminaive_fixpoint(parse_program("a(1). a(2). b(3)."))
        grouped = result.by_predicate()
        assert len(grouped[("a", 1)]) == 2


class TestSafety:
    def test_unsafe_rule_raises(self):
        with pytest.raises(EvaluationError):
            seminaive_fixpoint(parse_program("p(X, Y) <- q(X). q(1)."))

    def test_non_ground_fact_raises(self):
        with pytest.raises(EvaluationError):
            seminaive_fixpoint(parse_program("p(X)."))

    def test_divergent_function_symbols_hit_round_cap(self):
        with pytest.raises(EvaluationError):
            seminaive_fixpoint(parse_program("p(s(X)) <- p(X). p(z)."),
                               max_rounds=25)


class TestStratifiedNegation:
    PROGRAM = """
    account(ibm). account(acme).
    revoked(acme).
    approved(X) <- account(X), not revoked(X).
    """

    def test_negation(self):
        result = seminaive_fixpoint(parse_program(self.PROGRAM))
        assert facts_of(result, "approved") == {"approved(ibm)"}

    def test_naive_negation_agrees(self):
        assert (naive_fixpoint(parse_program(self.PROGRAM)).facts
                == seminaive_fixpoint(parse_program(self.PROGRAM)).facts)

    def test_two_strata(self):
        program = parse_program("""
        base(a). base(b). bad(a).
        good(X) <- base(X), not bad(X).
        verygood(X) <- good(X), not bad(X).
        """)
        result = seminaive_fixpoint(program)
        assert facts_of(result, "verygood") == {"verygood(b)"}

    def test_floundering_raises(self):
        with pytest.raises((BuiltinError, EvaluationError)):
            seminaive_fixpoint(parse_program(
                "p(X) <- not q(X), r(X). r(1)."))

    def test_unstratifiable_raises(self):
        from repro.errors import StratificationError

        with pytest.raises(StratificationError):
            seminaive_fixpoint(parse_program(
                "p(X) <- r(X), not q(X). q(X) <- r(X), not p(X). r(1)."))


# -- agreement with the backward chainer --------------------------------------

@st.composite
def random_edge_programs(draw):
    nodes = "abcde"
    edge_count = draw(st.integers(1, 10))
    edges = {
        (draw(st.sampled_from(nodes)), draw(st.sampled_from(nodes)))
        for _ in range(edge_count)
    }
    text = " ".join(f"edge({s}, {t})." for s, t in sorted(edges))
    text += (" path(X, Y) <- edge(X, Y)."
             " path(X, Y) <- edge(X, Z), path(Z, Y).")
    return text


@given(random_edge_programs())
@settings(max_examples=30, deadline=None)
def test_property_backward_tabled_agrees_with_forward(source):
    """Tabled SLD and the semi-naive fixpoint compute the same path facts."""
    program = parse_program(source)
    forward = seminaive_fixpoint(program)
    engine = SLDEngine(KnowledgeBase(program), tabled=True)
    backward = {
        str(solution.proofs[0].goal)
        for solution in engine.query(parse_goals("path(X, Y)"))
    }
    assert backward == facts_of(forward, "path")
