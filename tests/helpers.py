"""Shared plain-function helpers for the test suite."""

from repro.datalog.parser import parse_literal
from repro.datalog.sld import SLDEngine


def ask(engine: SLDEngine, goal_text: str) -> bool:
    return engine.ask([parse_literal(goal_text)])


def answers(engine: SLDEngine, goal_text: str, variable: str) -> set[str]:
    goal = parse_literal(goal_text)
    return {str(solution.binding(variable)) for solution in engine.query([goal])}
