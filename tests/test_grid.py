"""Grid scenario tests: delegated negotiation and delegation chains."""

import pytest

from repro.datalog.parser import parse_literal
from repro.negotiation.strategies import negotiate
from repro.scenarios.grid import build_grid_scenario, run_cluster_access

KEY_BITS = 512


class TestClusterAccess:
    def test_granted(self):
        scenario = build_grid_scenario(chain_length=2, key_bits=KEY_BITS)
        assert run_cluster_access(scenario).granted

    @pytest.mark.parametrize("length", [1, 3, 6])
    def test_any_chain_length(self, length):
        scenario = build_grid_scenario(chain_length=length, key_bits=KEY_BITS)
        assert run_cluster_access(scenario).granted

    def test_invalid_chain_length(self):
        with pytest.raises(ValueError):
            build_grid_scenario(chain_length=0, key_bits=KEY_BITS)

    def test_message_bytes_grow_with_chain(self):
        sizes = []
        for length in (1, 4, 8):
            scenario = build_grid_scenario(chain_length=length, key_bits=KEY_BITS)
            scenario.world.reset_metrics()
            assert run_cluster_access(scenario).granted
            sizes.append(scenario.world.stats.bytes)
        assert sizes[0] < sizes[1] < sizes[2]


class TestDelegatedNegotiation:
    def test_handheld_forwards(self):
        scenario = build_grid_scenario(chain_length=2, key_bits=KEY_BITS)
        result = run_cluster_access(scenario)
        forwards = list(result.session.events("forward"))
        assert forwards and forwards[0].actor == "Bob"
        assert forwards[0].counterpart == "Bob-Home"

    def test_handheld_holds_no_credentials(self):
        """Private keys and credentials stay on the home machine."""
        scenario = build_grid_scenario(chain_length=2, key_bits=KEY_BITS)
        assert len(scenario.handheld.credentials) == 0
        assert len(scenario.home.credentials) == 2  # delegation + membership
        assert run_cluster_access(scenario).granted

    def test_home_release_policy_gates_strangers(self):
        scenario = build_grid_scenario(chain_length=2, key_bits=KEY_BITS)
        mallory = scenario.world.add_peer("Mallory")
        scenario.world.distribute_keys()
        result = negotiate(mallory, "Bob-Home",
                           parse_literal('gridMember("Bob") @ "VO"'))
        assert not result.granted

    def test_cluster_accepts_direct_home_query_too(self):
        """The cluster itself is on the home machine's trusted list."""
        scenario = build_grid_scenario(chain_length=2, key_bits=KEY_BITS)
        result = negotiate(scenario.cluster, "Bob-Home",
                           parse_literal('gridMember("Bob") @ "VO"'))
        assert result.granted
