"""Cross-cutting integration tests: caching, revocation mid-flight, key
mismatches, world building, and the public API."""

import pytest

from repro import (
    World,
    negotiate,
    parse_literal,
    proof_from_tree,
    verify_proof,
)
from repro.scenarios.elearn import build_scenario1, run_discount_negotiation

KEY_BITS = 512


class TestPublicAPI:
    def test_quickstart_flow(self):
        world = World(key_bits=KEY_BITS)
        world.add_peer(
            "Server",
            'hello(Requester) $ true <- friend(Requester) @ "CA" @ Requester.')
        client = world.add_peer(
            "Client", 'friend(X) @ Y $ true <-{true} friend(X) @ Y.')
        world.issuer("CA")
        world.distribute_keys()
        world.give_credentials("Client", 'friend("Client") signedBy ["CA"].')
        result = negotiate(client, "Server", parse_literal('hello("Client")'))
        assert result.granted

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_world_rejects_duplicate_peers(self):
        world = World(key_bits=KEY_BITS)
        world.add_peer("X")
        with pytest.raises(ValueError):
            world.add_peer("X")

    def test_world_credential_requires_signer(self):
        from repro.errors import CredentialError

        world = World(key_bits=KEY_BITS)
        with pytest.raises(CredentialError):
            world.credential("a(1).")


class TestCredentialCaching:
    def test_second_negotiation_cheaper_after_adoption(self):
        """§4.2: peers cache signed rules 'to speed up negotiation'."""
        scenario = build_scenario1(key_bits=KEY_BITS)
        first = run_discount_negotiation(scenario)
        assert first.granted
        # E-Learn adopts what it learned (Alice's student credentials).
        scenario.elearn.adopt_session_credentials(first.session)
        scenario.world.reset_metrics()
        second = run_discount_negotiation(scenario)
        assert second.granted
        # No student query to Alice is needed any more.
        queries = [e for e in second.session.events("query")
                   if "student" in e.detail]
        assert not queries


class TestRevocationMidFlight:
    def test_revoked_credential_breaks_later_negotiations(self):
        from repro.credentials.revocation import RevocationList

        scenario = build_scenario1(key_bits=KEY_BITS)
        assert run_discount_negotiation(scenario).granted

        registrar_keys = scenario.world.keys_for("UIUC Registrar")
        crl = RevocationList("UIUC Registrar", registrar_keys)
        for credential in scenario.alice.credentials.credentials():
            if "Registrar" in credential.issuers[0]:
                crl.revoke(credential.serial)
        scenario.elearn.add_crl(crl.snapshot())
        result = run_discount_negotiation(scenario)
        assert not result.granted
        assert result.session.counters["bad_credentials"] >= 1


class TestKeyMismatch:
    def test_untrusted_issuer_blocks_verification(self):
        """If E-Learn does not know UIUC's key, Alice's proof can't verify."""
        from repro.crypto.keys import KeyRing

        scenario = build_scenario1(key_bits=KEY_BITS)
        fresh_ring = KeyRing()
        fresh_ring.add(scenario.elearn.keys.public)
        fresh_ring.add(scenario.world.keys_for("ELENA").public)
        fresh_ring.add(scenario.world.keys_for("BBB").public)
        fresh_ring.add(scenario.alice.keys.public)
        scenario.elearn.keyring = fresh_ring  # no UIUC / Registrar keys
        assert not run_discount_negotiation(scenario).granted


class TestEndToEndProofPackaging:
    def test_proof_travels_and_verifies_independently(self):
        """Build a certified proof at one peer and verify it with nothing
        but the credentials and a key ring (a third party could do this)."""
        world = World(key_bits=KEY_BITS)
        holder = world.add_peer("Holder")
        world.issuer("UIUC")
        world.issuer("Registrar")
        world.distribute_keys()
        world.give_credentials("Holder", '''
            student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "Registrar".
            student("Alice") @ "Registrar" signedBy ["Registrar"].
        ''')
        goal = parse_literal('student("Alice") @ "UIUC"')
        solution = holder.local_query(goal, allow_remote=False)[0]
        package = proof_from_tree(goal, solution.proofs[0], "Holder")
        tree = verify_proof(package, holder.keyring)
        assert tree is not None

    def test_negotiation_result_credentials_form_proof(self):
        scenario = build_scenario1(key_bits=KEY_BITS)
        result = run_discount_negotiation(scenario)
        assert result.granted
        # E-Learn received Alice's credentials; they re-derive her status.
        from repro.negotiation.proof import CertifiedProof

        # Completed sessions are evicted from the transport table; the
        # result keeps the Session object for post-hoc inspection.
        received = result.session.received_for("E-Learn")
        package = CertifiedProof(
            parse_literal('student("Alice") @ "UIUC"'),
            tuple(c for c in received.credentials()
                  if c.rule.head.predicate == "student"),
            assembled_by="E-Learn")
        assert verify_proof(package, scenario.elearn.keyring) is not None


class TestMessageSizeLimits:
    def test_oversized_negotiation_fails_cleanly(self):
        from repro.errors import MessageTooLargeError
        from repro.net.transport import Transport

        world = World(key_bits=KEY_BITS)
        world.transport.max_message_bytes = 40
        world.add_peer("Server", "open(1) <-{true} true.")
        client = world.add_peer("Client")
        world.distribute_keys()
        # Deterministic transport failures no longer escape the driver: the
        # negotiation terminates with a clean, classified failure result.
        result = negotiate(client, "Server", parse_literal("open(1)"))
        assert not result.granted
        assert result.failure_kind == "protocol"
        assert "exceeds limit" in result.failure_reason
        assert not result.session.in_flight


class TestNetworkFailureInjection:
    def test_dropped_subquery_fails_branch_not_process(self):
        """A dropped counter-query surfaces as negotiation failure, not an
        unhandled exception."""
        scenario = build_scenario1(key_bits=KEY_BITS)
        dropped = {"count": 0}

        def drop(message):
            if (message.kind == "QueryMessage"
                    and "BBB" in str(getattr(message, "goal", ""))):
                dropped["count"] += 1
                return True
            return False

        scenario.world.transport.drop = drop
        result = run_discount_negotiation(scenario)
        assert not result.granted
        assert dropped["count"] >= 1
        assert result.session.counters["network_failures"] >= 1
