"""Unit tests for the indexed knowledge base."""

from repro.datalog.ast import Literal
from repro.datalog.knowledge import KnowledgeBase, _rule_variant
from repro.datalog.parser import parse_literal, parse_program, parse_rule
from repro.datalog.terms import atom, var


def build(source: str) -> KnowledgeBase:
    return KnowledgeBase(parse_program(source))


class TestAddLookup:
    def test_rules_for_uses_indicator(self):
        base = build("a(1). a(2). b(1).")
        assert len(list(base.rules_for(parse_literal("a(X)")))) == 2

    def test_arity_distinguishes(self):
        base = build("p(1). p(1, 2).")
        assert len(list(base.rules_for(parse_literal("p(X)")))) == 1

    def test_first_argument_indexing_narrows(self):
        base = build("a(1, x). a(2, y). a(3, z). a(X, w) <- t(X).")
        candidates = list(base.rules_for(parse_literal("a(2, W)")))
        heads = [str(rule.head) for rule in candidates]
        assert "a(2, y)" in heads
        assert "a(1, x)" not in heads
        assert any(not rule.is_fact for rule in candidates)  # rule kept

    def test_unbound_first_arg_scans_all(self):
        base = build("a(1, x). a(2, y).")
        assert len(list(base.rules_for(parse_literal("a(X, W)")))) == 2

    def test_program_order_preserved(self):
        base = build("a(2). a(1). a(3).")
        heads = [str(rule.head) for rule in base.rules_for(parse_literal("a(X)"))]
        assert heads == ["a(2)", "a(1)", "a(3)"]

    def test_load_parses_and_adds(self):
        base = KnowledgeBase()
        added = base.load("a(1). b(X) <- a(X).")
        assert len(added) == 2 and len(base) == 2

    def test_program_order_across_indexed_and_unindexed(self):
        # Indexed facts (constant first argument) interleaved with rules and
        # var-first facts; the candidate merge must reproduce program order,
        # not "indexed first, then unindexed".
        base = build(
            "a(1, first). a(X, second) <- t(X). a(1, third). "
            "a(Y, fourth). a(1, fifth).")
        heads = [str(rule.head) for rule in base.rules_for(parse_literal("a(1, W)"))]
        assert heads == [
            "a(1, first)", "a(X, second)", "a(1, third)",
            "a(Y, fourth)", "a(1, fifth)"]

    def test_generation_bumps_on_mutation(self):
        base = build("a(1).")
        start = base.generation
        rule = parse_rule("a(2).")
        base.add(rule)
        after_add = base.generation
        assert after_add > start
        base.remove(rule)
        assert base.generation > after_add


class TestReleaseSeparation:
    def test_release_policies_not_in_content(self):
        base = build("r(X) $ true <- c(X).\nr(X) <- d(X).")
        assert len(list(base.rules_for(parse_literal("r(X)")))) == 1
        assert len(base.release_policies_for(parse_literal("r(X)"))) == 1

    def test_release_policies_iterator(self):
        base = build("r(X) $ true <- c(X).\na(1).")
        assert len(list(base.release_policies())) == 1
        assert len(list(base.content_rules())) == 1


class TestRemoval:
    def test_remove_fact(self):
        rule = parse_rule("a(1).")
        base = KnowledgeBase([rule])
        assert base.remove(rule)
        assert len(base) == 0
        assert not base.remove(rule)

    def test_remove_reindexes(self):
        base = build("a(1). a(2).")
        base.remove(parse_rule("a(1)."))
        assert [str(r.head) for r in base.rules_for(parse_literal("a(2)"))] == ["a(2)"]

    def test_remove_release_policy(self):
        rule = parse_rule("r(X) $ true <- c(X).")
        base = KnowledgeBase([rule])
        assert base.remove(rule) and len(base) == 0


class TestIntrospection:
    def test_predicates(self):
        base = build("a(1). b(1, 2). r(X) $ true <- c(X).")
        assert ("a", 1) in base.predicates()
        assert ("r", 1) in base.predicates()

    def test_has_predicate(self):
        base = build("a(1).")
        assert base.has_predicate(("a", 1))
        assert not base.has_predicate(("a", 2))

    def test_signed_rules(self):
        base = build('a(1) signedBy ["CA"]. b(1).')
        assert len(list(base.signed_rules())) == 1

    def test_facts_filter(self):
        base = build("a(1). a(X) <- b(X). b(2).")
        assert len(list(base.facts(("a", 1)))) == 1

    def test_copy_independent(self):
        base = build("a(1).")
        duplicate = base.copy()
        duplicate.load("a(2).")
        assert len(base) == 1 and len(duplicate) == 2

    def test_filtered(self):
        base = build("a(1). b(2).")
        only_a = base.filtered(lambda rule: rule.head.predicate == "a")
        assert len(only_a) == 1

    def test_contains(self):
        rule = parse_rule("a(1).")
        base = KnowledgeBase([rule])
        assert rule in base
        assert parse_rule("a(2).") not in base


class TestVariants:
    def test_contains_variant_up_to_renaming(self):
        base = build("p(X) <- q(X).")
        assert base.contains_variant(parse_rule("p(Y) <- q(Y)."))
        assert not base.contains_variant(parse_rule("p(Y) <- q(Z)."))

    def test_rule_variant_checks_guard(self):
        left = parse_rule("r(X) $ g(X) <- b(X).")
        right = parse_rule("r(Y) $ g(Y) <- b(Y).")
        different = parse_rule("r(Y) $ h(Y) <- b(Y).")
        assert _rule_variant(left, right)
        assert not _rule_variant(left, different)

    def test_rule_variant_distinguishes_contexts(self):
        public = parse_rule("a(X) <-{true} b(X).")
        private = parse_rule("a(X) <- b(X).")
        assert not _rule_variant(public, private)

    def test_rule_variant_distinguishes_signers(self):
        signed = parse_rule('a(X) signedBy ["CA"].')
        unsigned = parse_rule("a(X).")
        assert not _rule_variant(signed, unsigned)
