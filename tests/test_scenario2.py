"""Scenario 2 (§4.2) — Bob / IBM / E-Learn / VISA claims, verified.

Headline claims:
- "With the PeerTrust run-time system and these policies, IBM employees
  will be able to enroll in free courses at E-Learn."
- "If IBM were not a member of ELENA, then IBM employees would not be
  eligible for free courses, but Bob would be able to purchase courses."
- Policy protection: the freebieEligible definition is privileged business
  information and never leaves E-Learn.
"""

import pytest

from repro.datalog.parser import parse_goals, parse_literal
from repro.negotiation.strategies import negotiate
from repro.net.message import PolicyRequestMessage
from repro.scenarios.services import (
    build_scenario2,
    revoke_ibm_card,
    run_free_enrollment,
    run_paid_enrollment,
)

KEY_BITS = 512


@pytest.fixture
def scenario():
    return build_scenario2(key_bits=KEY_BITS)


class TestFreeEnrollment:
    def test_granted(self, scenario):
        result = run_free_enrollment(scenario)
        assert result.granted

    def test_bindings(self, scenario):
        result = run_free_enrollment(scenario)
        assert str(result.binding("Company")) == '"IBM"'
        assert str(result.binding("Email")) == '"Bob@ibm.com"'

    def test_employee_credential_gated_on_elena(self, scenario):
        """Bob's release guard (ELENA membership) is satisfied from his
        cached credential — no counter-query needed (paper: 'From previous
        interactions, Bob also knows...')."""
        result = run_free_enrollment(scenario)
        disclosed = [e.detail for e in result.session.events("disclose")]
        assert any("employee" in d for d in disclosed)

    def test_non_free_course_rejected_on_free_path(self, scenario):
        result = run_free_enrollment(scenario, course="cs411")
        assert not result.granted


class TestPaidEnrollment:
    def test_granted_with_price(self, scenario):
        result = run_paid_enrollment(scenario)
        assert result.granted
        assert str(result.binding("Price")) == "1000"

    def test_visa_card_needs_policy27(self, scenario):
        """Bob asks E-Learn to prove VISA-merchant status before showing the
        card (the policy27 dance)."""
        result = run_paid_enrollment(scenario)
        queries = [e for e in result.session.events("query")]
        assert any("authorizedMerchant" in e.detail and e.actor == "Bob"
                   for e in queries)

    def test_purchase_approval_queried_from_visa(self, scenario):
        result = run_paid_enrollment(scenario)
        queries = [e for e in result.session.events("query")]
        assert any(e.counterpart == "VISA" and "purchaseApproved" in e.detail
                   for e in queries)

    def test_over_authorization_price_fails(self, scenario):
        """cs500 costs 5000; Bob's IBM authorisation caps at 2000."""
        result = run_paid_enrollment(scenario, course="cs500")
        assert not result.granted

    def test_unpriced_course_fails(self, scenario):
        result = run_paid_enrollment(scenario, course="cs999")
        assert not result.granted


class TestCounterfactuals:
    def test_ibm_not_in_elena(self):
        scenario = build_scenario2(key_bits=KEY_BITS, ibm_in_elena=False)
        assert not run_free_enrollment(scenario).granted
        assert run_paid_enrollment(scenario).granted

    def test_revoked_card_blocks_purchase_only(self, scenario):
        revoke_ibm_card(scenario)
        assert not run_paid_enrollment(scenario).granted
        assert run_free_enrollment(scenario).granted

    def test_plain_policy49_skips_visa(self):
        scenario = build_scenario2(key_bits=KEY_BITS, revocation_check=False)
        result = run_paid_enrollment(scenario)
        assert result.granted
        queries = [e for e in result.session.events("query")]
        assert not any("purchaseApproved" in e.detail for e in queries)

    def test_revoked_card_irrelevant_without_check(self):
        scenario = build_scenario2(key_bits=KEY_BITS, revocation_check=False)
        revoke_ibm_card(scenario)
        assert run_paid_enrollment(scenario).granted


class TestBrokeredAuthority:
    def test_broker_variant_grants(self):
        scenario = build_scenario2(key_bits=KEY_BITS, use_broker=True)
        result = run_paid_enrollment(scenario)
        assert result.granted

    def test_broker_was_consulted(self):
        scenario = build_scenario2(key_bits=KEY_BITS, use_broker=True)
        result = run_paid_enrollment(scenario)
        queries = [e for e in result.session.events("query")]
        assert any(e.counterpart == "myBroker" for e in queries)


class TestPolicyProtection:
    def test_freebie_definition_never_crosses_wire(self, scenario):
        """E3: no transcript event carries the freebieEligible rule body."""
        result = run_free_enrollment(scenario)
        for event in result.session.transcript:
            if event.kind in ("disclose", "receive", "answer"):
                assert "freebieEligible" not in event.detail

    def test_freebie_rule_is_private(self, scenario):
        from repro.policy.release import rule_shipping_obligations

        rules = [r for r in scenario.elearn.kb.content_rules()
                 if r.head.predicate == "freebieEligible"]
        assert rules
        assert rule_shipping_obligations(rules[0], "Bob", "E-Learn") is None

    def test_unipro_dissemination_to_members(self, scenario):
        """§4.2: 'ELENA member companies can disseminate the definition of
        freebieEligible to their employees' — modelled with UniPro."""
        scenario.elearn.unipro.register_from_kb(
            scenario.elearn.kb, "freebieEligible", 4,
            protection=parse_goals(
                'employee(Requester) @ Company @ Requester, '
                'member(Company) @ "ELENA" @ Requester'))
        request = PolicyRequestMessage(
            sender="Bob", receiver="E-Learn", session_id="s-unipro",
            policy_name="freebieEligible")
        reply = scenario.elearn.handle(request)
        assert reply.granted and reply.rules
        # Shipped rules carry no contexts.
        assert all(rule.rule_context is None for rule in reply.rules)

    def test_unipro_denied_to_stranger(self, scenario):
        scenario.elearn.unipro.register_from_kb(
            scenario.elearn.kb, "freebieEligible", 4,
            protection=parse_goals(
                'employee(Requester) @ Company @ Requester, '
                'member(Company) @ "ELENA" @ Requester'))
        stranger = scenario.world.add_peer("Stranger")
        scenario.world.distribute_keys()
        request = PolicyRequestMessage(
            sender="Stranger", receiver="E-Learn", session_id="s-unipro2",
            policy_name="freebieEligible")
        assert not scenario.elearn.handle(request).granted


class TestStrategies:
    def test_eager_free_enrollment(self, scenario):
        result = run_free_enrollment(scenario, strategy="eager")
        assert result.granted
