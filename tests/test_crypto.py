"""RSA, canonical serialisation, and key-ring tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import rsa
from repro.crypto.canonical import canonical_bytes, rule_signing_bytes
from repro.crypto.keys import KeyPair, KeyRing, clear_key_cache, keypair_for
from repro.datalog.parser import parse_literal, parse_rule, parse_term
from repro.errors import CryptoError, KeyError_, SignatureError

KEY_BITS = 512


@pytest.fixture(scope="module")
def keypair():
    return keypair_for("crypto-test", KEY_BITS)


class TestRSA:
    def test_sign_verify_roundtrip(self, keypair):
        message = b"policy content"
        signature = keypair.sign(message)
        assert keypair.public.verify(message, signature)

    def test_signature_deterministic(self, keypair):
        assert keypair.sign(b"m") == keypair.sign(b"m")

    def test_tampered_message_rejected(self, keypair):
        signature = keypair.sign(b"original")
        assert not keypair.public.verify(b"altered", signature)

    def test_tampered_signature_rejected(self, keypair):
        signature = bytearray(keypair.sign(b"m"))
        signature[5] ^= 0xFF
        assert not keypair.public.verify(b"m", bytes(signature))

    def test_wrong_key_rejected(self, keypair):
        other = keypair_for("crypto-test-other", KEY_BITS)
        signature = keypair.sign(b"m")
        assert not other.public.verify(b"m", signature)

    def test_wrong_length_signature_rejected(self, keypair):
        assert not keypair.public.verify(b"m", b"\x00" * 3)

    def test_oversized_representative_rejected(self, keypair):
        length = keypair.public.rsa_key.byte_length
        assert not keypair.public.verify(b"m", b"\xff" * length)

    def test_empty_message_signable(self, keypair):
        assert keypair.public.verify(b"", keypair.sign(b""))

    def test_large_message_signable(self, keypair):
        blob = b"x" * 100_000
        assert keypair.public.verify(blob, keypair.sign(blob))

    def test_key_generation_rejects_tiny_moduli(self):
        with pytest.raises(CryptoError):
            rsa.generate_keypair(128)

    def test_verify_or_raise(self, keypair):
        with pytest.raises(SignatureError):
            rsa.verify_or_raise(b"m", b"\x00" * keypair.public.rsa_key.byte_length,
                                keypair.public.rsa_key)

    @given(st.binary(max_size=64))
    @settings(max_examples=15, deadline=None)
    def test_property_roundtrip_any_message(self, message):
        keys = keypair_for("crypto-prop", KEY_BITS)
        assert keys.public.verify(message, keys.sign(message))


class TestCanonical:
    def test_deterministic(self):
        rule = parse_rule('student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "R".')
        assert canonical_bytes(rule) == canonical_bytes(parse_rule(str(rule)))

    def test_renaming_invariance(self):
        left = parse_rule('p(X, Y) <- q(X), r(Y).')
        right = parse_rule('p(A, B) <- q(A), r(B).')
        assert canonical_bytes(left) == canonical_bytes(right)

    def test_variable_sharing_distinguished(self):
        shared = parse_rule('p(X, X) <- q(X).')
        distinct = parse_rule('p(X, Y) <- q(X).')
        assert canonical_bytes(shared) != canonical_bytes(distinct)

    def test_atom_vs_string_distinguished(self):
        assert canonical_bytes(parse_term("x")) != canonical_bytes(parse_term('"x"'))

    def test_int_vs_float_distinguished(self):
        assert canonical_bytes(parse_term("1")) != canonical_bytes(parse_term("1.0"))

    def test_structure_not_separator_injectable(self):
        # f(ab) vs f(a, b): framing must keep them distinct
        assert (canonical_bytes(parse_term("f(ab)"))
                != canonical_bytes(parse_term("f(a, b)")))

    def test_authority_position_matters(self):
        assert (canonical_bytes(parse_literal('p(a) @ "U"'))
                != canonical_bytes(parse_literal('p(a, "U")')))

    def test_negation_encoded(self):
        assert (canonical_bytes(parse_literal("not p(a)"))
                != canonical_bytes(parse_literal("p(a)")))

    def test_signing_bytes_strip_contexts(self):
        with_context = parse_rule('c(X) $ g(Requester) <-{true} signedBy ["A"] c(X).')
        without = parse_rule('c(X) <- signedBy ["A"] c(X).')
        assert rule_signing_bytes(with_context) == rule_signing_bytes(without)

    def test_signing_bytes_include_signers(self):
        a = parse_rule('c(X) signedBy ["A"].')
        b = parse_rule('c(X) signedBy ["B"].')
        assert rule_signing_bytes(a) != rule_signing_bytes(b)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            canonical_bytes("just a string")  # type: ignore[arg-type]


class TestKeyRing:
    def test_add_and_get(self, keypair):
        ring = KeyRing()
        ring.add(keypair.public)
        assert ring.get("crypto-test") == keypair.public
        assert "crypto-test" in ring

    def test_missing_principal_raises(self):
        with pytest.raises(KeyError_):
            KeyRing().get("nobody")

    def test_maybe_get_returns_none(self):
        assert KeyRing().maybe_get("nobody") is None

    def test_conflicting_key_rejected(self, keypair):
        ring = KeyRing()
        ring.add(keypair.public)
        impostor = KeyPair.generate("crypto-test", KEY_BITS)
        with pytest.raises(KeyError_):
            ring.add(impostor.public)

    def test_re_adding_same_key_is_fine(self, keypair):
        ring = KeyRing()
        ring.add(keypair.public)
        ring.add(keypair.public)
        assert len(ring) == 1

    def test_verify_raises_on_bad_signature(self, keypair):
        ring = KeyRing()
        ring.add(keypair.public)
        with pytest.raises(SignatureError):
            ring.verify("crypto-test", b"m", b"\x00" * 64)

    def test_merge_and_copy(self, keypair):
        ring = KeyRing()
        ring.add(keypair.public)
        other = KeyRing()
        other.merge(ring)
        duplicate = other.copy()
        assert duplicate.principals() == ["crypto-test"]

    def test_fingerprint_stable_and_distinct(self, keypair):
        other = keypair_for("crypto-test-other", KEY_BITS)
        assert keypair.public.fingerprint == keypair.public.fingerprint
        assert keypair.public.fingerprint != other.public.fingerprint


class TestKeyCache:
    def test_cache_returns_same_pair(self):
        assert keypair_for("cache-a", KEY_BITS) is keypair_for("cache-a", KEY_BITS)

    def test_cache_distinguishes_principals(self):
        assert keypair_for("cache-a", KEY_BITS) is not keypair_for("cache-b", KEY_BITS)

    def test_cache_bypass(self):
        first = keypair_for("cache-c", KEY_BITS)
        fresh = keypair_for("cache-c", KEY_BITS, use_cache=False)
        assert first is not fresh
