"""Property tests for term interning and cross-query table retention.

Interning (hash-consing) is an *optimisation*, not a semantic feature: a
term built while interning is disabled must be indistinguishable — under
equality, hashing, unification, matching, variant checks, and substitution
round-trips — from the interned term with the same spelling.  Hypothesis
drives random term shapes through both construction modes.

The retention half checks the cache-invalidation contract: an engine that
retains answer tables across queries must drop them the moment its
knowledge base changes, so a mutated KB can never serve stale answers.
"""

from hypothesis import given, settings, strategies as st

from repro.datalog.knowledge import KnowledgeBase
from repro.datalog.parser import parse_goals, parse_program, parse_rule
from repro.datalog.sld import SLDEngine
from repro.datalog.terms import (
    Compound,
    Constant,
    Variable,
    set_interning,
)
from repro.datalog.unify import match, unify, variant
from repro.datalog.substitution import Substitution

# -- term strategies ---------------------------------------------------------

_constant_values = st.one_of(
    st.sampled_from(["a", "cs101", "E-Learn", ""]),
    st.integers(-5, 99),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=16),
)
_quoted = st.booleans()
_var_names = st.sampled_from(["X", "Y", "Course", "Requester"])


@st.composite
def term_spec(draw, depth=2):
    """A builder-independent description of a term: constants, variables,
    and (when depth allows) compounds over smaller specs."""
    choices = ["constant", "variable"]
    if depth > 0:
        choices.append("compound")
    kind = draw(st.sampled_from(choices))
    if kind == "constant":
        return ("constant", draw(_constant_values), draw(_quoted))
    if kind == "variable":
        return ("variable", draw(_var_names))
    functor = draw(st.sampled_from(["f", "g", "pair"]))
    args = draw(st.lists(term_spec(depth=depth - 1), min_size=0, max_size=3))
    return ("compound", functor, tuple(args))


def build(spec):
    kind = spec[0]
    if kind == "constant":
        return Constant(spec[1], quoted=spec[2])
    if kind == "variable":
        return Variable(spec[1])
    return Compound(spec[1], tuple(build(s) for s in spec[2]))


def build_uninterned(spec):
    was = set_interning(False)
    try:
        return build(spec)
    finally:
        set_interning(was)


# -- interning is invisible ---------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(term_spec())
def test_interned_and_structural_terms_indistinguishable(spec):
    interned = build(spec)
    structural = build_uninterned(spec)
    assert interned == structural
    assert structural == interned
    assert hash(interned) == hash(structural)
    assert str(interned) == str(structural)
    assert repr(interned) == repr(structural)


@settings(max_examples=150, deadline=None)
@given(term_spec(), term_spec())
def test_unify_agrees_across_construction_modes(left_spec, right_spec):
    il, ir = build(left_spec), build(right_spec)
    sl, sr = build_uninterned(left_spec), build_uninterned(right_spec)
    interned_result = unify(il, ir)
    structural_result = unify(sl, sr)
    assert (interned_result is None) == (structural_result is None)
    # Mixed-mode unification must agree too (identity fast paths may only
    # ever short-circuit *equal* terms).
    assert (unify(il, sr) is None) == (interned_result is None)


@settings(max_examples=150, deadline=None)
@given(term_spec(), term_spec())
def test_match_and_variant_agree_across_construction_modes(left_spec, right_spec):
    il, ir = build(left_spec), build(right_spec)
    sl, sr = build_uninterned(left_spec), build_uninterned(right_spec)
    assert (match(il, ir) is None) == (match(sl, sr) is None)
    assert variant(il, ir) == variant(sl, sr)
    # A term is always a variant of its other-mode twin.
    assert variant(il, sl)


@settings(max_examples=100, deadline=None)
@given(term_spec())
def test_substitution_round_trip_across_construction_modes(spec):
    interned = build(spec)
    structural = build_uninterned(spec)
    binding = Substitution.empty().bind(Variable("Z"), Constant("w"))
    assert binding.resolve(interned) == binding.resolve(structural)
    # Resolving against the empty substitution is the identity.
    assert Substitution.empty().resolve(structural) == interned


# -- retained tables are invalidated by KB mutation ---------------------------


def _edges(engine, goal_text):
    return {str(sol.subst.resolve(Variable("W")))
            for sol in engine.query(parse_goals(goal_text))}


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6))
def test_mutated_kb_invalidates_retained_tables(chain_length):
    lines = [f"edge(n{i}, n{i + 1})." for i in range(chain_length)]
    lines += ["path(X, Y) <- edge(X, Y).", "path(X, Y) <- edge(X, Z), path(Z, Y)."]
    kb = KnowledgeBase(parse_program("\n".join(lines)))
    engine = SLDEngine(kb, tabled=True, retain_tables=True, max_depth=500)

    before = _edges(engine, "path(n0, W)")
    assert f"n{chain_length}" in before

    # Extend the chain: the retained tables must be dropped, not replayed.
    kb.add(parse_rule(f"edge(n{chain_length}, n{chain_length + 1})."))
    extended = _edges(engine, "path(n0, W)")
    assert f"n{chain_length + 1}" in extended
    assert extended == before | {f"n{chain_length + 1}"}

    # Shrink it again: stale answers must not survive either.
    kb.remove(parse_rule(f"edge(n{chain_length}, n{chain_length + 1})."))
    assert _edges(engine, "path(n0, W)") == before


def test_unchanged_kb_reuses_retained_tables():
    program = parse_program(
        "edge(a, b). edge(b, c). "
        "path(X, Y) <- edge(X, Y). path(X, Y) <- edge(X, Z), path(Z, Y).")
    engine = SLDEngine(KnowledgeBase(program), tabled=True, retain_tables=True)
    first = _edges(engine, "path(a, W)")
    assert engine.stats.table_reuse == 0
    second = _edges(engine, "path(a, W)")
    assert second == first
    assert engine.stats.table_reuse > 0
