"""Strategy tests: parsimonious vs eager behaviour and interoperability.

The key property (after Yu, Winslett & Seamons): on workloads where a safe
disclosure sequence exists, *every* strategy must establish trust; where
none exists, every strategy must terminate with failure.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.generator import (
    build_alternating_chain,
    build_cyclic_release,
    build_delegation_chain,
    build_divergent_world,
    build_peer_ring,
    build_policy_tree,
    build_random_bilateral,
)
from repro.workloads.metrics import measure_negotiation

KEY_BITS = 512


class TestParsimonious:
    def test_delegation_chain(self):
        workload = build_delegation_chain(3, key_bits=KEY_BITS)
        result, report = measure_negotiation(workload)
        assert result.granted and report.messages > 0

    def test_policy_tree(self):
        workload = build_policy_tree(2, 2, key_bits=KEY_BITS)
        result, report = measure_negotiation(workload)
        assert result.granted
        assert report.disclosures == 4  # one credential per leaf

    def test_peer_ring(self):
        workload = build_peer_ring(5, key_bits=KEY_BITS)
        result, report = measure_negotiation(workload)
        assert result.granted
        # one query per hop plus the initiation
        assert report.messages == 2 * 5

    def test_alternating_chain_message_growth(self):
        small = measure_negotiation(build_alternating_chain(2, key_bits=KEY_BITS))[1]
        large = measure_negotiation(build_alternating_chain(5, key_bits=KEY_BITS))[1]
        assert large.messages > small.messages


class TestEager:
    def test_alternating_chain(self):
        workload = build_alternating_chain(4, key_bits=KEY_BITS)
        result, report = measure_negotiation(workload, "eager")
        assert result.granted

    def test_eager_fewer_messages_than_parsimonious(self):
        pars = measure_negotiation(build_alternating_chain(5, key_bits=KEY_BITS),
                                   "parsimonious")[1]
        eager = measure_negotiation(build_alternating_chain(5, key_bits=KEY_BITS),
                                    "eager")[1]
        assert eager.messages < pars.messages

    def test_eager_never_sends_queries(self):
        workload = build_alternating_chain(3, key_bits=KEY_BITS)
        result, report = measure_negotiation(workload, "eager")
        assert result.granted and report.queries == 0


class TestTermination:
    def test_cyclic_release_fails_both_strategies(self):
        for strategy in ("parsimonious", "eager"):
            workload = build_cyclic_release(key_bits=KEY_BITS)
            result, _ = measure_negotiation(workload, strategy)
            assert not result.granted

    def test_cyclic_release_detected_as_loop(self):
        workload = build_cyclic_release(key_bits=KEY_BITS)
        result, report = measure_negotiation(workload)
        assert report.loops_detected >= 1

    def test_divergent_recursion_bounded(self):
        workload = build_divergent_world(key_bits=KEY_BITS)
        result, _ = measure_negotiation(workload)
        assert not result.granted

    def test_unknown_provider_raises(self):
        from repro.errors import UnknownPeerError
        from repro.negotiation.strategies import negotiate
        from repro.datalog.parser import parse_literal

        workload = build_cyclic_release(key_bits=KEY_BITS)
        with pytest.raises(UnknownPeerError):
            negotiate(workload.requester, "Ghost", parse_literal("r(1)"))

    def test_detached_peer_raises(self):
        from repro.negotiation.peer import Peer
        from repro.negotiation.strategies import negotiate
        from repro.datalog.parser import parse_literal

        loner = Peer("Loner", key_bits=KEY_BITS)
        with pytest.raises(RuntimeError):
            negotiate(loner, "X", parse_literal("r(1)"))


class TestInteroperability:
    @pytest.mark.parametrize("rounds", [1, 2, 3, 5])
    def test_chain_parity(self, rounds):
        outcomes = {}
        for strategy in ("parsimonious", "eager"):
            workload = build_alternating_chain(rounds, key_bits=KEY_BITS)
            outcomes[strategy] = measure_negotiation(workload, strategy)[0].granted
        assert outcomes["parsimonious"] == outcomes["eager"] is True

    @given(st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_property_random_bilateral_parity(self, seed):
        """Both strategies agree on success for random acyclic workloads."""
        outcomes = {}
        for strategy in ("parsimonious", "eager"):
            workload = build_random_bilateral(seed, key_bits=KEY_BITS)
            outcomes[strategy] = measure_negotiation(workload, strategy)[0].granted
        assert outcomes["parsimonious"] == outcomes["eager"]

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_property_eager_disclosure_superset(self, seed):
        """Eager never discloses fewer credentials than parsimonious on the
        same (successful) workload."""
        pars_workload = build_random_bilateral(seed, key_bits=KEY_BITS)
        pars_result, pars_report = measure_negotiation(pars_workload)
        eager_workload = build_random_bilateral(seed, key_bits=KEY_BITS)
        eager_result, eager_report = measure_negotiation(eager_workload, "eager")
        if pars_result.granted and eager_result.granted:
            assert eager_report.disclosures >= pars_report.disclosures


class TestUnknownStrategy:
    def test_rejected(self):
        from repro.negotiation.strategies import negotiate
        from repro.datalog.parser import parse_literal

        workload = build_cyclic_release(key_bits=KEY_BITS)
        with pytest.raises(ValueError):
            negotiate(workload.requester, "Server",
                      parse_literal("r(1)"), strategy="bogus")
