"""GEM-style distributed tabling (``--tabling gem``).

The contract under test (ISSUE 8):

- the mutual-membership scenario returns sound, *complete* answers under
  ``gem`` on both the inline (synchronous ``transport.request``) and
  event-driven runtimes — identical results, and byte-identical traffic
  per seed, with and without a fault plan;
- the default ``inflight`` strategy is untouched: re-entrant queries still
  prune (``loops_detected``) and no tables appear;
- repeated queries on a completed goal are served from the table;
- tables leaked by an aborted evaluation are demoted, never trusted;
- the session counters surface as the ``peertrust_negotiation_*`` family.
"""

from __future__ import annotations

import pytest

from repro.datalog.parser import parse_literal
from repro.datalog.terms import reset_fresh_variables
from repro.net.faults import uniform_plan
from repro.net.message import QueryMessage, reset_message_ids
from repro.net.transport import RetryPolicy, constant_latency
from repro.negotiation.session import (
    TABLE_COMPLETE,
    TABLE_TENTATIVE,
    next_session_id,
    reset_session_ids,
)
from repro.runtime import run_negotiation, scheduler_for
from repro.scenarios.mutual_membership import (
    EXPECTED_MEMBERS,
    build_mutual_membership,
    run_membership_query,
)
from repro.workloads.generator import build_mutual_membership_workload

KEY_BITS = 512


def _members(result) -> set[str]:
    return {str(literal.args[0]).strip('"')
            for literal, _ in result.answers}


def _scenario(tabling: str):
    scenario = build_mutual_membership(key_bits=KEY_BITS)
    scenario.transport.tabling = tabling
    scenario.transport.latency = constant_latency(1.0)
    return scenario


class TestGemCompleteness:
    def test_gem_returns_all_members(self):
        result = run_membership_query(_scenario("gem"))
        assert result.granted
        assert _members(result) == set(EXPECTED_MEMBERS)

    def test_gem_matches_inflight_answers(self):
        gem = run_membership_query(_scenario("gem"))
        inflight = run_membership_query(_scenario("inflight"))
        assert _members(gem) == _members(inflight) == set(EXPECTED_MEMBERS)

    def test_gem_exercises_the_table_machinery(self):
        result = run_membership_query(_scenario("gem"))
        counters = result.session.counters
        assert counters["tables_activated"] >= 2
        assert counters["table_subscriptions"] >= 1
        assert counters["tables_completed"] >= 2
        assert counters.get("loops_detected", 0) == 0

    def test_querying_either_institution_is_complete(self):
        for provider in ("StateU", "TechU"):
            result = run_membership_query(_scenario("gem"), provider=provider)
            assert _members(result) == set(EXPECTED_MEMBERS), provider

    @pytest.mark.parametrize("depth", [0, 1, 2])
    def test_generated_workloads_match_across_strategies(self, depth):
        expected = {f"m{level}{side}"
                    for level in range(depth + 1) for side in "ab"}
        for tabling in ("inflight", "gem"):
            workload = build_mutual_membership_workload(
                depth=depth, key_bits=KEY_BITS)
            workload.world.transport.tabling = tabling
            result = workload.run()
            assert result.granted, tabling
            assert _members(result) == expected, tabling


class TestInflightUnchanged:
    def test_default_strategy_is_inflight(self):
        scenario = build_mutual_membership(key_bits=KEY_BITS)
        assert scenario.transport.tabling == "inflight"

    def test_inflight_still_prunes_loops_without_tables(self):
        result = run_membership_query(_scenario("inflight"))
        counters = result.session.counters
        assert counters["loops_detected"] >= 1
        assert counters.get("tables_activated", 0) == 0
        assert _members(result) == set(EXPECTED_MEMBERS)


def _event_fingerprint(tabling: str, faults: bool):
    """One event-runtime negotiation from a cold, deterministic start:
    identity counters reset, constant latency, optional seeded fault plan.
    Returns everything that must replay byte-identically."""
    reset_message_ids()
    reset_session_ids()
    reset_fresh_variables()
    scenario = _scenario(tabling)
    if faults:
        scenario.world.inject_faults(uniform_plan(
            seed=97, drop=0.05, duplicate=0.05, delay_rate=0.1, delay_ms=2.0))
        scenario.world.set_retry(RetryPolicy(max_attempts=4, jitter_ms=0.0))
    result = run_membership_query(scenario)
    scheduler = scheduler_for(scenario.transport)
    transcript = tuple(
        (event.kind, event.actor, event.counterpart)
        for event in result.session.transcript)
    return {
        "members": frozenset(_members(result)),
        "granted": result.granted,
        "trace": tuple(scheduler.trace),
        "transcript": transcript,
        "messages": scenario.transport.stats.messages,
        "bytes": scenario.transport.stats.bytes,
    }


class TestDeterminism:
    @pytest.mark.parametrize("faults", [False, True])
    def test_gem_event_trace_replays_byte_identically(self, faults):
        first = _event_fingerprint("gem", faults)
        second = _event_fingerprint("gem", faults)
        assert first["trace"]
        assert first == second
        assert first["members"] == EXPECTED_MEMBERS

    def test_inline_and_event_runtimes_agree(self):
        # Event-driven run through the negotiation driver...
        event = _event_fingerprint("gem", faults=False)

        # ...vs the same query pushed synchronously through the transport
        # (the inline runtime: recursion on the call stack, no scheduler).
        reset_message_ids()
        reset_session_ids()
        reset_fresh_variables()
        scenario = _scenario("gem")
        reply = scenario.transport.request(QueryMessage(
            sender="Client", receiver="StateU", session_id=next_session_id(),
            goal=parse_literal("member(X)")))
        inline_members = {str(item.answered_literal.args[0]).strip('"')
                          for item in reply.items}
        assert inline_members == set(event["members"]) == EXPECTED_MEMBERS
        # Same per-seed traffic, byte for byte: the driver adds no wire
        # messages beyond the inline exchange.
        assert scenario.transport.stats.messages == event["messages"]
        assert scenario.transport.stats.bytes == event["bytes"]

    def test_inflight_traffic_is_not_perturbed_by_the_flag(self):
        # The gem code paths are dormant unless opted in: an inflight run
        # in a process that has run gem negotiations replays the inflight
        # fingerprint exactly.
        baseline = _event_fingerprint("inflight", faults=False)
        _event_fingerprint("gem", faults=False)
        again = _event_fingerprint("inflight", faults=False)
        assert baseline == again


class TestTableLifecycle:
    def test_repeat_query_is_served_from_the_completed_table(self):
        scenario = _scenario("gem")
        transport = scenario.transport
        session = transport.sessions.get_or_create(
            "repeat-session", "Client", scenario.client.max_nesting)
        goal = parse_literal("member(X)")
        first = transport.request(QueryMessage(
            sender="Client", receiver="StateU", session_id=session.id,
            goal=goal))
        passes_after_first = session.counters["table_passes"]
        second = transport.request(QueryMessage(
            sender="Client", receiver="StateU", session_id=session.id,
            goal=goal))
        assert session.counters["table_hits"] >= 1
        # No re-evaluation: the second answer came from stored solutions.
        assert session.counters["table_passes"] == passes_after_first
        first_answers = {str(i.answered_literal) for i in first.items}
        second_answers = {str(i.answered_literal) for i in second.items}
        assert first_answers == second_answers

    def test_audit_demotes_leaked_active_tables(self):
        scenario = _scenario("gem")
        session = scenario.transport.sessions.get_or_create(
            "leak-session", "Client", scenario.client.max_nesting)
        node = session.activate_table("StateU", ("member", 1))
        assert node.status != TABLE_TENTATIVE
        session.audit_in_flight()
        assert node.status == TABLE_TENTATIVE
        assert session.counters["tables_leaked"] == 1

    def test_complete_tables_respects_the_order_threshold(self):
        scenario = _scenario("gem")
        session = scenario.transport.sessions.get_or_create(
            "threshold-session", "Client", scenario.client.max_nesting)
        low = session.activate_table("StateU", ("a", 1))
        high = session.activate_table("StateU", ("b", 1))
        low.status = TABLE_TENTATIVE
        high.status = TABLE_TENTATIVE
        promoted = session.complete_tables("StateU", high.order)
        assert promoted == 1
        assert high.status == TABLE_COMPLETE
        assert low.status == TABLE_TENTATIVE


class TestCountersMetricFamily:
    def test_session_counters_surface_as_prometheus_family(self):
        from repro.obs.metrics import MetricsRegistry, install_default_collectors

        registry = install_default_collectors(MetricsRegistry())
        run_membership_query(_scenario("gem"))
        text = registry.render_prometheus()
        assert "peertrust_negotiation_counters_total" in text
        assert 'counter="tables_activated"' in text
        assert 'counter="granted"' in text

    def test_tabling_event_family_registered(self):
        from repro.obs.metrics import global_registry

        run_membership_query(_scenario("gem"))
        text = global_registry().render_prometheus()
        assert "peertrust_tabling_events_total" in text
        assert 'event="activations"' in text


class TestGemUnderFaults:
    def test_gem_survives_moderate_chaos(self):
        scenario = _scenario("gem")
        scenario.world.inject_faults(uniform_plan(
            seed=1337, drop=0.1, duplicate=0.1))
        scenario.world.set_retry(RetryPolicy(
            max_attempts=6, base_delay_ms=2.0, multiplier=2.0,
            max_delay_ms=50.0, jitter_ms=0.5))
        result = run_membership_query(scenario)
        assert result.granted
        assert _members(result) == set(EXPECTED_MEMBERS)
