"""Credential issuance, verification, revocation, and store tests."""

import dataclasses

import pytest

from repro.credentials.credential import (
    Credential,
    issue_credential,
    rule_signer_names,
    tampered_with,
    verify_credential,
)
from repro.credentials.revocation import RevocationList
from repro.credentials.store import CredentialStore
from repro.crypto.keys import KeyRing, keypair_for
from repro.datalog.parser import parse_literal, parse_rule
from repro.errors import (
    CredentialError,
    ExpiredCredentialError,
    RevokedCredentialError,
    SignatureError,
)

KEY_BITS = 512


@pytest.fixture(scope="module")
def uiuc():
    return keypair_for("UIUC", KEY_BITS)


@pytest.fixture(scope="module")
def registrar():
    return keypair_for("UIUC Registrar", KEY_BITS)


@pytest.fixture(scope="module")
def ring(uiuc, registrar):
    ring = KeyRing()
    ring.add(uiuc.public)
    ring.add(registrar.public)
    return ring


@pytest.fixture
def student_id(registrar):
    rule = parse_rule(
        'student("Alice") @ "UIUC Registrar" signedBy ["UIUC Registrar"].')
    return issue_credential(rule, registrar)


@pytest.fixture
def delegation(uiuc):
    rule = parse_rule(
        'student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "UIUC Registrar".')
    return issue_credential(rule, uiuc)


class TestIssue:
    def test_issue_and_verify(self, student_id, ring):
        verify_credential(student_id, ring)

    def test_issuers_extracted(self, delegation):
        assert delegation.issuers == ["UIUC"]
        assert delegation.primary_issuer == "UIUC"

    def test_unsigned_rule_rejected(self, uiuc):
        with pytest.raises(CredentialError):
            issue_credential(parse_rule("a(1)."), uiuc)

    def test_principal_mismatch_rejected(self, registrar):
        rule = parse_rule('student(X) @ "UIUC" signedBy ["UIUC"].')
        with pytest.raises(CredentialError):
            issue_credential(rule, registrar)  # registrar forging UIUC

    def test_multi_signer(self, uiuc, registrar, ring):
        rule = parse_rule('cosigned(X) signedBy ["UIUC", "UIUC Registrar"].')
        credential = issue_credential(rule, [uiuc, registrar])
        verify_credential(credential, ring)

    def test_multi_signer_key_count_mismatch(self, uiuc):
        rule = parse_rule('cosigned(X) signedBy ["UIUC", "UIUC Registrar"].')
        with pytest.raises(CredentialError):
            issue_credential(rule, [uiuc])

    def test_variable_signer_rejected(self, uiuc):
        rule = parse_rule("a(X) signedBy [Y].")
        with pytest.raises(CredentialError):
            rule_signer_names(rule)


class TestVerify:
    def test_rule_swap_detected(self, student_id, ring):
        forged_rule = parse_rule(
            'student("Mallory") @ "UIUC Registrar" signedBy ["UIUC Registrar"].')
        forged = dataclasses.replace(student_id, rule=forged_rule)
        with pytest.raises((CredentialError, SignatureError)):
            verify_credential(forged, ring)

    def test_signature_swap_detected(self, student_id, delegation, ring):
        forged = dataclasses.replace(student_id, signatures=delegation.signatures)
        with pytest.raises((CredentialError, SignatureError)):
            verify_credential(forged, ring)

    def test_serial_mismatch_detected(self, student_id, ring):
        forged = dataclasses.replace(student_id, serial="0" * 64)
        with pytest.raises(CredentialError):
            verify_credential(forged, ring)

    def test_unknown_issuer_rejected(self, student_id):
        from repro.errors import KeyError_

        with pytest.raises(KeyError_):
            verify_credential(student_id, KeyRing())

    def test_tampered_with_helper(self, student_id, ring):
        assert not tampered_with(student_id, ring)

    def test_variable_renaming_does_not_break_signature(self, uiuc, ring):
        rule = parse_rule(
            'student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "UIUC Registrar".')
        credential = issue_credential(rule, uiuc)
        renamed = dataclasses.replace(credential, rule=rule.rename_apart())
        # Renaming changes serials (content-addressed) but not signatures;
        # recompute the serial as a cooperative holder would.
        from repro.credentials.credential import compute_serial

        renamed = dataclasses.replace(
            renamed, serial=compute_serial(renamed.rule, None, None))
        verify_credential(renamed, ring)


class TestValidityWindow:
    def test_within_window(self, registrar, ring):
        rule = parse_rule('badge("Alice") signedBy ["UIUC Registrar"].')
        credential = issue_credential(rule, registrar, not_before=100.0,
                                      not_after=200.0)
        verify_credential(credential, ring, now=150.0)

    def test_not_yet_valid(self, registrar, ring):
        rule = parse_rule('badge("Alice") signedBy ["UIUC Registrar"].')
        credential = issue_credential(rule, registrar, not_before=100.0)
        with pytest.raises(ExpiredCredentialError):
            verify_credential(credential, ring, now=50.0)

    def test_expired(self, registrar, ring):
        rule = parse_rule('badge("Alice") signedBy ["UIUC Registrar"].')
        credential = issue_credential(rule, registrar, not_after=200.0)
        with pytest.raises(ExpiredCredentialError):
            verify_credential(credential, ring, now=300.0)

    def test_no_window_skips_clock(self, student_id, ring):
        verify_credential(student_id, ring, now=None)


class TestRevocation:
    def test_revoked_credential_rejected(self, registrar, ring, student_id):
        crl = RevocationList("UIUC Registrar", registrar)
        crl.revoke(student_id.serial)
        with pytest.raises(RevokedCredentialError):
            verify_credential(student_id, ring, [crl])

    def test_unrevoked_passes(self, registrar, ring, student_id):
        crl = RevocationList("UIUC Registrar", registrar)
        verify_credential(student_id, ring, [crl])

    def test_crl_signature_verifies(self, registrar, ring):
        crl = RevocationList("UIUC Registrar", registrar)
        crl.revoke("serial-1")
        crl.snapshot().verify(ring)

    def test_tampered_crl_detected(self, registrar, ring):
        crl = RevocationList("UIUC Registrar", registrar)
        crl.revoke("serial-1")
        snapshot = crl.snapshot()
        snapshot._serials.add("injected")
        with pytest.raises(SignatureError):
            snapshot.verify(ring)

    def test_snapshot_cannot_revoke(self, registrar):
        crl = RevocationList("UIUC Registrar", registrar)
        with pytest.raises(SignatureError):
            crl.snapshot().revoke("x")

    def test_sequence_increments(self, registrar):
        crl = RevocationList("UIUC Registrar", registrar)
        crl.revoke("a")
        crl.revoke("a")  # idempotent
        crl.revoke("b")
        assert crl.sequence == 2 and len(crl) == 2


class TestStore:
    def test_add_dedups_by_serial(self, student_id):
        store = CredentialStore()
        assert store.add(student_id)
        assert not store.add(student_id)
        assert len(store) == 1

    def test_matching_by_head(self, student_id, delegation):
        store = CredentialStore([student_id, delegation])
        matches = store.matching(parse_literal('student("Alice") @ "UIUC Registrar"'))
        assert matches == [student_id]

    def test_matching_unifies_variables(self, delegation):
        store = CredentialStore([delegation])
        assert store.matching(parse_literal('student("Bob") @ "UIUC"'))

    def test_candidates_by_indicator(self, student_id, delegation):
        store = CredentialStore([student_id, delegation])
        assert len(store.candidates(("student", 1))) == 2

    def test_by_issuer(self, student_id, delegation):
        store = CredentialStore([student_id, delegation])
        assert store.by_issuer("UIUC") == [delegation]

    def test_remove(self, student_id):
        store = CredentialStore([student_id])
        assert store.remove(student_id.serial)
        assert not store.remove(student_id.serial)
        assert len(store) == 0

    def test_get_and_contains(self, student_id):
        store = CredentialStore([student_id])
        assert store.get(student_id.serial) is student_id
        assert student_id in store
