"""Content-triggered trust negotiation tests (§6 extension).

The printer story from the paper's closing paragraph: one policy covers
"all color printers on the third floor" intensionally; resources gain or
lose coverage purely through their attribute facts.
"""

import pytest

from repro.datalog.parser import parse_literal
from repro.datalog.terms import Constant, Variable
from repro.errors import PolicyError
from repro.negotiation.strategies import negotiate
from repro.policy.content import ContentPolicy, ContentPolicyRegistry
from repro.world import World

KEY_BITS = 512

PRINTER_ATTRIBUTES = """
printer(p1). location(p1, floor3). colorCapable(p1).
printer(p2). location(p2, floor3).
printer(p3). location(p3, floor1). colorCapable(p3).
"""

FLOOR3_COLOR = ContentPolicy.parse(
    name="color-floor3",
    action="print",
    resource_var="R",
    selector="printer(R), location(R, floor3), colorCapable(R)",
    requirements='staffBadge(Requester) @ "HR" @ Requester',
)


def build_world(combining="any", extra_policies=()):
    world = World(key_bits=KEY_BITS)
    server = world.add_peer("PrintServer", PRINTER_ATTRIBUTES)
    client = world.add_peer("Carol",
                            'staffBadge(X) @ Y $ true <-{true} staffBadge(X) @ Y.\n'
                            'contractorPass(X) @ Y $ true <-{true} contractorPass(X) @ Y.')
    world.issuer("HR")
    world.issuer("Facilities")
    world.distribute_keys()
    world.give_credentials("Carol", 'staffBadge("Carol") signedBy ["HR"].')
    registry = ContentPolicyRegistry(combining=combining)
    registry.add(FLOOR3_COLOR)
    for policy in extra_policies:
        registry.add(policy)
    registry.install(server)
    return world, server, client, registry


class TestPolicyAuthoring:
    def test_empty_selector_rejected(self):
        with pytest.raises(PolicyError):
            ContentPolicy("p", "print", Variable("R"), (), ())

    def test_selector_must_constrain_resource(self):
        with pytest.raises(PolicyError):
            ContentPolicy.parse("p", "print", "R",
                                selector="printer(Q)", requirements="true")

    def test_compiles_to_release_rule(self):
        rule = FLOOR3_COLOR.compile()
        assert rule.is_release_policy
        assert rule.head.predicate == "access"
        assert len(rule.body) == 3

    def test_duplicate_name_rejected(self):
        registry = ContentPolicyRegistry()
        registry.add(FLOOR3_COLOR)
        with pytest.raises(PolicyError):
            registry.add(FLOOR3_COLOR)

    def test_bad_combining_mode(self):
        with pytest.raises(ValueError):
            ContentPolicyRegistry(combining="most")


class TestCoverage:
    def test_covering_policies(self):
        world, server, client, registry = build_world()
        assert [p.name for p in registry.covering_policies(
            "print", Constant("p1"))] == ["color-floor3"]
        assert registry.covering_policies("print", Constant("p2")) == []
        assert registry.covering_policies("print", Constant("p3")) == []
        assert registry.covering_policies("scan", Constant("p1")) == []

    def test_content_trigger_on_new_resource(self):
        """Adding a floor-3 color printer extends coverage with no policy
        edit — the defining property of content-triggered protection."""
        world, server, client, registry = build_world()
        server.kb.load("printer(p9). location(p9, floor3). colorCapable(p9).")
        assert registry.covering_policies("print", Constant("p9"))

    def test_requirements_instantiated(self):
        world, server, client, registry = build_world()
        [goals] = registry.requirements_for("print", Constant("p1"), "Carol")
        assert 'staffBadge("Carol") @ "HR" @ "Carol"' == str(goals[0])

    def test_uncovered_resource_returns_none(self):
        world, server, client, registry = build_world()
        assert registry.requirements_for("print", Constant("p2"), "Carol") is None

    def test_remove_policy_removes_coverage(self):
        world, server, client, registry = build_world()
        registry.remove("color-floor3")
        assert registry.covering_policies("print", Constant("p1")) == []
        assert not negotiate(client, "PrintServer",
                             parse_literal('access(print, p1, "Carol")')).granted


class TestNegotiationIntegration:
    def test_access_granted_on_covered_resource(self):
        world, server, client, _ = build_world()
        result = negotiate(client, "PrintServer",
                           parse_literal('access(print, p1, "Carol")'))
        assert result.granted

    def test_access_denied_without_coverage(self):
        world, server, client, _ = build_world()
        # p2 is monochrome: no policy covers it, default-deny applies.
        result = negotiate(client, "PrintServer",
                           parse_literal('access(print, p2, "Carol")'))
        assert not result.granted

    def test_requirements_drive_negotiation(self):
        """Without the HR badge the requirement is unprovable."""
        world, server, client, _ = build_world()
        for credential in list(client.credentials.credentials()):
            client.credentials.remove(credential.serial)
        result = negotiate(client, "PrintServer",
                           parse_literal('access(print, p1, "Carol")'))
        assert not result.granted

    def test_open_resource_variable_enumerates(self):
        world, server, client, _ = build_world()
        result = negotiate(client, "PrintServer",
                           parse_literal('access(print, R, "Carol")'))
        assert result.granted
        assert str(result.binding("R")) == "p1"


class TestCombiningModes:
    FACILITIES = ContentPolicy.parse(
        name="floor3-facilities",
        action="print",
        resource_var="R",
        selector="printer(R), location(R, floor3)",
        requirements='contractorPass(Requester) @ "Facilities" @ Requester',
    )

    def test_any_mode_grants_on_one_policy(self):
        world, server, client, _ = build_world(
            combining="any", extra_policies=[self.FACILITIES])
        # Carol has only the HR badge; in 'any' mode that is enough for p1.
        result = negotiate(client, "PrintServer",
                           parse_literal('access(print, p1, "Carol")'))
        assert result.granted

    def test_all_mode_requires_every_covering_policy(self):
        world, server, client, _ = build_world(
            combining="all", extra_policies=[self.FACILITIES])
        result = negotiate(client, "PrintServer",
                           parse_literal('access(print, p1, "Carol")'))
        assert not result.granted  # missing the Facilities pass

        world.give_credentials(
            "Carol", 'contractorPass("Carol") signedBy ["Facilities"].')
        result = negotiate(client, "PrintServer",
                           parse_literal('access(print, p1, "Carol")'))
        assert result.granted

    def test_all_mode_uncovered_still_denied(self):
        world, server, client, _ = build_world(combining="all")
        result = negotiate(client, "PrintServer",
                           parse_literal('access(print, p3, "Carol")'))
        assert not result.granted

    def test_double_install_rejected(self):
        world, server, client, registry = build_world()
        with pytest.raises(PolicyError):
            registry.install(server)
