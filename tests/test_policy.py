"""Pseudo-variable, release-policy, and UniPro tests."""

import pytest

from repro.datalog.knowledge import KnowledgeBase
from repro.datalog.parser import parse_goals, parse_literal, parse_program, parse_rule
from repro.errors import PolicyError
from repro.policy.pseudovars import (
    REQUESTER,
    SELF,
    bind_pseudovars,
    bind_pseudovars_in_literal,
    binder,
    mentions_pseudovars,
)
from repro.policy.release import (
    credential_release_decisions,
    release_obligations,
    rule_shipping_obligations,
)
from repro.policy.unipro import UniProRegistry


class TestPseudovars:
    def test_bind_rule(self):
        rule = parse_rule("greet(Requester) <- known(Requester), here(Self).")
        bound = bind_pseudovars(rule, "Bob", "Server")
        assert str(bound.head) == 'greet("Bob")'
        assert 'here("Server")' in str(bound)

    def test_bind_literal(self):
        literal = parse_literal('member(Requester) @ "ELENA" @ Requester')
        bound = bind_pseudovars_in_literal(literal, "E-Learn", "Bob")
        assert str(bound) == 'member("E-Learn") @ "ELENA" @ "E-Learn"'

    def test_binder_is_reusable(self):
        transform = binder("Bob", "Server")
        rule = parse_rule("a(Requester) <- b(Self).")
        assert str(transform(rule).head) == 'a("Bob")'

    def test_mentions(self):
        assert mentions_pseudovars(parse_rule("a(Requester) <- b(X)."))
        assert mentions_pseudovars(parse_rule("a(X) <- b(Self)."))
        assert not mentions_pseudovars(parse_rule("a(X) <- b(X)."))

    def test_other_variables_untouched(self):
        rule = parse_rule("a(Requester, X) <- b(X).")
        bound = bind_pseudovars(rule, "R", "S")
        assert "X" in str(bound)


class TestReleaseObligations:
    def kb(self, source):
        return KnowledgeBase(parse_program(source))

    def test_no_policy_means_default_deny(self):
        base = self.kb("a(1).")
        assert release_obligations(base, parse_literal("a(1)"),
                                   "R", "S") == []

    def test_guard_instantiated_with_requester(self):
        base = self.kb(
            'student(X) @ Y $ member(Requester) @ "BBB" @ Requester '
            "<-{true} student(X) @ Y.")
        decisions = release_obligations(
            base, parse_literal('student("Alice") @ "UIUC"'), "E-Learn", "Alice")
        assert len(decisions) == 1
        goals = decisions[0].goals
        assert len(goals) == 1  # body filtered (restates the released literal)
        assert str(goals[0]) == 'member("E-Learn") @ "BBB" @ "E-Learn"'

    def test_dollar_true_unconditional(self):
        base = self.kb("c(X) $ true <-{true} c(X).")
        decisions = release_obligations(base, parse_literal("c(1)"), "R", "S")
        assert decisions and decisions[0].unconditional

    def test_equality_guard_filtered_when_satisfied(self):
        base = self.kb("d(C, P) $ Requester = P <- d(C, P).")
        decisions = release_obligations(
            base, parse_literal('d(cs101, "Alice")'), "Alice", "E-Learn")
        assert decisions and decisions[0].unconditional

    def test_equality_guard_drops_on_mismatch(self):
        base = self.kb("d(C, P) $ Requester = P <- d(C, P).")
        decisions = release_obligations(
            base, parse_literal('d(cs101, "Alice")'), "Mallory", "E-Learn")
        assert decisions == []

    def test_head_mismatch_no_decision(self):
        base = self.kb("c(X) $ true <-{true} c(X).")
        assert release_obligations(base, parse_literal("other(1)"), "R", "S") == []

    def test_extra_body_conditions_kept(self):
        base = self.kb("c(X) $ g(Requester) <-{true} c(X), extra(X).")
        decisions = release_obligations(base, parse_literal("c(1)"), "R", "S")
        predicates = [goal.predicate for goal in decisions[0].goals]
        assert predicates == ["g", "extra"]


class TestCredentialDecisions:
    def test_bare_head_matches_chained_policy(self, keys_for):
        from repro.credentials.credential import issue_credential

        base = KnowledgeBase(parse_program(
            'visa(X) @ Y $ true <-{true} visa(X) @ Y.'))
        credential = issue_credential(
            parse_rule('visa("IBM") signedBy ["VISA"].'), keys_for("VISA"))
        assert credential_release_decisions(base, credential, "R", "S")

    def test_bare_policy_matches_bare_head(self, keys_for):
        from repro.credentials.credential import issue_credential

        base = KnowledgeBase(parse_program(
            'visa("IBM") $ true <-{true} visa("IBM").'))
        credential = issue_credential(
            parse_rule('visa("IBM") signedBy ["VISA"].'), keys_for("VISA"))
        assert credential_release_decisions(base, credential, "R", "S")


class TestRuleShipping:
    def test_default_context_never_ships(self):
        rule = parse_rule("secret(X) <- a(X).")
        assert rule_shipping_obligations(rule, "R", "S") is None
        assert rule_shipping_obligations(rule, "S", "S") == ()

    def test_public_rule_ships_unconditionally(self):
        rule = parse_rule("open(X) <-{true} a(X).")
        assert rule_shipping_obligations(rule, "R", "S") == ()

    def test_guarded_context_instantiates(self):
        rule = parse_rule("guarded(X) <-{m(Requester)} a(X).")
        obligations = rule_shipping_obligations(rule, "R", "S")
        assert obligations is not None
        assert str(obligations[0]) == 'm("R")'


class TestUniPro:
    def definition(self):
        return parse_program(
            "policy27(Requester) <- merchant(Requester), member(Requester).")

    def test_register_and_get(self):
        registry = UniProRegistry()
        registry.register("policy27", self.definition(),
                          protection=parse_goals('member(Requester) @ "ELENA"'))
        policy = registry.get("policy27")
        assert policy.is_disclosable
        assert registry.knows("policy27")
        assert registry.names() == ["policy27"]

    def test_wrong_head_rejected(self):
        registry = UniProRegistry()
        with pytest.raises(PolicyError):
            registry.register("policy99", self.definition())

    def test_empty_definition_rejected(self):
        registry = UniProRegistry()
        with pytest.raises(PolicyError):
            registry.register("p", [])

    def test_unknown_policy_raises(self):
        with pytest.raises(PolicyError):
            UniProRegistry().get("ghost")

    def test_disclosed_rules_strip_contexts(self):
        registry = UniProRegistry()
        rules = parse_program("p(X) <-{m(Requester)} q(X).")
        registry.register("p", rules, protection=())
        shipped = registry.get("p").disclosed_rules()
        assert shipped[0].rule_context is None

    def test_undisclosable_policy(self):
        registry = UniProRegistry()
        registry.register("p", parse_program("p(X) <- q(X)."), protection=None)
        assert registry.protection_goals("p") is None
        assert not registry.get("p").is_disclosable

    def test_register_from_kb(self):
        base = KnowledgeBase(parse_program("p(X) <- q(X). p(X) <- r(X). s(1)."))
        registry = UniProRegistry()
        policy = registry.register_from_kb(base, "p", 1, protection=())
        assert len(policy.definition) == 2

    def test_register_from_kb_missing(self):
        registry = UniProRegistry()
        with pytest.raises(PolicyError):
            registry.register_from_kb(KnowledgeBase(), "p", 1)

    def test_protection_cycle_detected(self):
        registry = UniProRegistry()
        registry.register("p1", parse_program("p1(X) <- a(X)."),
                          protection=parse_goals("p2(Requester)"))
        registry.register("p2", parse_program("p2(X) <- b(X)."),
                          protection=parse_goals("p1(Requester)"))
        with pytest.raises(PolicyError):
            registry.validate()

    def test_acyclic_protection_validates(self):
        registry = UniProRegistry()
        registry.register("p1", parse_program("p1(X) <- a(X)."),
                          protection=parse_goals("p2(Requester)"))
        registry.register("p2", parse_program("p2(X) <- b(X)."), protection=())
        registry.validate()
