"""Unit tests for the PeerTrust tokeniser."""

import pytest

from repro.datalog.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    PUNCT,
    STRING,
    VAR,
    tokenize,
)
from repro.errors import ParseError


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)][:-1]  # drop EOF


class TestBasicTokens:
    def test_empty_input_is_just_eof(self):
        assert kinds("") == [EOF]

    def test_ident(self):
        assert kinds("price")[:1] == [IDENT]

    def test_variable_uppercase(self):
        assert kinds("Course")[:1] == [VAR]

    def test_variable_underscore(self):
        assert kinds("_anon")[:1] == [VAR]

    def test_string(self):
        tokens = tokenize('"E-Learn"')
        assert tokens[0].kind == STRING and tokens[0].text == "E-Learn"

    def test_integer(self):
        assert tokenize("2000")[0].text == "2000"

    def test_float(self):
        assert tokenize("3.5")[0].text == "3.5"

    def test_number_then_rule_dot(self):
        # "price(1)." — the trailing dot is a terminator, not a decimal point
        assert texts("f(1).") == ["f", "(", "1", ")", "."]

    def test_keywords(self):
        for word in ("signedBy", "not", "true"):
            assert tokenize(word)[0].kind == KEYWORD

    def test_mixed_case_ident_is_ident(self):
        assert tokenize("policeOfficer")[0].kind == IDENT


class TestOperators:
    def test_arrow(self):
        assert texts("a <- b") == ["a", "<-", "b"]

    def test_prolog_arrow(self):
        assert texts("a :- b") == ["a", ":-", "b"]

    def test_comparison_longest_match(self):
        assert texts("X <= Y") == ["X", "<=", "Y"]
        assert texts("X < Y") == ["X", "<", "Y"]
        assert texts("X != Y") == ["X", "!=", "Y"]

    def test_authority_and_context(self):
        assert texts('p @ "A" $ q') == ["p", "@", "A", "$", "q"]

    def test_braces_brackets(self):
        assert texts("{ } [ ]") == ["{", "}", "[", "]"]

    def test_arithmetic(self):
        assert texts("A + B * C / D - E") == ["A", "+", "B", "*", "C", "/", "D", "-", "E"]


class TestStringsEscapes:
    def test_escaped_quote(self):
        assert tokenize(r'"a\"b"')[0].text == 'a"b'

    def test_escaped_newline_tab(self):
        assert tokenize(r'"a\nb\tc"')[0].text == "a\nb\tc"

    def test_escaped_backslash(self):
        assert tokenize(r'"a\\b"')[0].text == "a\\b"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"open')

    def test_unknown_escape(self):
        with pytest.raises(ParseError):
            tokenize(r'"\q"')


class TestComments:
    def test_percent_comment(self):
        assert texts("a % comment\nb") == ["a", "b"]

    def test_double_slash_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("a /* open")

    def test_division_is_not_comment(self):
        assert texts("A / B") == ["A", "/", "B"]


class TestPositions:
    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            tokenize("a\n  ^")
        assert info.value.line == 2

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("#")
