"""Policy-linter tests."""

import pytest

from repro.policy.lint import lint_source, worst_severity


def codes(source):
    return [f.code for f in lint_source(source)]


class TestUnsafeRules:
    def test_unbound_head_variable(self):
        findings = lint_source("p(X, Y) <- q(X).")
        assert "P001" in [f.code for f in findings]
        assert worst_severity(findings) == "error"

    def test_nonground_fact(self):
        assert "P001" in codes("p(X).")

    def test_signed_nonground_fact_is_credential_template(self):
        # Signed rules with variables are fine (authorized("Bob", Price)...).
        assert "P001" not in codes('authorized("Bob", P) @ "IBM" '
                                   '<- signedBy ["IBM"] P < 2000.')

    def test_safe_rule_clean(self):
        assert "P001" not in codes("p(X) <- q(X). q(1).")

    def test_pseudovars_count_as_bound(self):
        assert "P001" not in codes(
            "greet(Requester) <- known(Requester). known(1).")


class TestFlounderingGoals:
    def test_unbindable_comparison(self):
        assert "P002" in codes("p(X) <- q(X), Y < 3.")

    def test_bindable_comparison_ok_any_order(self):
        assert "P002" not in codes("p(C) <- P < 10, price(C, P). price(a, 1).")

    def test_unbindable_negation(self):
        assert "P003" in codes("p(X) <- q(X), not r(Y). q(1). r(2).")

    def test_bindable_negation_ok(self):
        assert "P003" not in codes(
            "p(X) <- q(X), not r(X). q(1). r(2).")


class TestUndefinedPredicates:
    def test_missing_local_predicate(self):
        assert "P004" in codes("p(X) <- ghost(X).")

    def test_authority_goals_excused(self):
        assert "P004" not in codes('p(X) <- cred(X) @ "CA" @ Requester.')

    def test_builtins_excused(self):
        assert "P004" not in codes("p(X) <- q(X), X < 9. q(1).")


class TestShareability:
    def test_private_predicate_flagged_info(self):
        findings = lint_source("secret(1).")
        p005 = [f for f in findings if f.code == "P005"]
        assert p005 and p005[0].severity == "info"

    def test_release_policy_silences_p005(self):
        assert "P005" not in codes(
            "c(1). c(X) $ true <-{true} c(X).")

    def test_public_rule_silences_p005(self):
        assert "P005" not in codes("open(X) <-{true} src(X). src(1) <-{true} true.")

    def test_one_finding_per_predicate(self):
        findings = [f for f in lint_source("s(1). s(2). s(3).")
                    if f.code == "P005"]
        assert len(findings) == 1


class TestCredentialSanity:
    def test_foreign_authority_credential(self):
        findings = lint_source(
            'student(X) @ "UIUC" signedBy ["Mallory"].')
        assert "P006" in [f.code for f in findings]

    def test_matching_authority_clean(self):
        assert "P006" not in codes('student(X) @ "UIUC" signedBy ["UIUC"].')

    def test_bare_head_credential_clean(self):
        assert "P006" not in codes('visaCard("IBM") signedBy ["VISA"].')


class TestStratification:
    def test_unstratifiable_flagged(self):
        assert "P007" in codes(
            "p(X) <- r(X), not q(X). q(X) <- r(X), not p(X). r(1).")

    def test_stratified_clean(self):
        assert "P007" not in codes(
            "p(X) <- r(X), not q(X). q(2). r(1).")


class TestRequesterBlindGuards:
    def test_guard_without_requester(self):
        assert "P008" in codes(
            "c(X) $ moonPhase(full) <-{true} c(X). moonPhase(full). c(1).")

    def test_guard_with_requester_clean(self):
        assert "P008" not in codes(
            "c(X) $ member(Requester) <-{true} c(X). member(1). c(1).")

    def test_dollar_true_clean(self):
        assert "P008" not in codes("c(X) $ true <-{true} c(X). c(1).")


class TestScenarioProgramsAreClean:
    @pytest.mark.parametrize("module_attr", [
        ("repro.scenarios.elearn", "ELEARN_PROGRAM"),
        ("repro.scenarios.elearn", "ALICE_PROGRAM"),
        ("repro.scenarios.services", "BOB_PROGRAM"),
        ("repro.scenarios.services", "VISA_PROGRAM"),
    ])
    def test_no_errors_in_shipped_programs(self, module_attr):
        import importlib

        module_name, attribute = module_attr
        source = getattr(importlib.import_module(module_name), attribute)
        findings = lint_source(source)
        errors = [f for f in findings if f.severity == "error"]
        assert not errors, "\n".join(str(f) for f in errors)


class TestWorstSeverity:
    def test_empty(self):
        assert worst_severity([]) is None

    def test_orders(self):
        findings = lint_source("secret(1). p(X, Y) <- q(X). q(1).")
        assert worst_severity(findings) == "error"
