"""CLI tests (in-process, no subprocesses)."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    status = main(list(argv), out=out)
    return status, out.getvalue()


class TestParse:
    def test_valid_program(self, tmp_path):
        source = tmp_path / "policies.pt"
        source.write_text(
            'freeCourse(cs101).\n'
            'enroll(C, R) $ true <- freeCourse(C).\n'
            'member("E") @ "BBB" signedBy ["BBB"].\n')
        status, output = run_cli("parse", str(source))
        assert status == 0
        assert "3 rule(s)" in output
        assert "1 release policy" in output
        assert "1 signed" in output

    def test_syntax_error_fails(self, tmp_path, capsys):
        source = tmp_path / "broken.pt"
        source.write_text("freeCourse(cs101")
        status, _ = run_cli("parse", str(source))
        assert status == 1

    def test_missing_file(self, tmp_path):
        status, _ = run_cli("parse", str(tmp_path / "nope.pt"))
        assert status == 2


class TestDemo:
    @pytest.mark.parametrize("name", ["quickstart", "scenario1", "grid"])
    def test_demos_grant(self, name):
        status, output = run_cli("demo", name)
        assert status == 0
        assert "granted:  True" in output
        assert "transcript:" in output

    def test_scenario2_demo(self):
        status, output = run_cli("demo", "scenario2")
        assert status == 0

    def test_eager_strategy_flag(self):
        status, output = run_cli("demo", "quickstart", "--strategy", "eager")
        assert status == 0
        assert "granted:  True" in output

    def test_stats_flag_prints_cache_counters(self):
        status, output = run_cli("demo", "quickstart", "--stats")
        assert status == 0
        assert "granted:  True" in output
        assert "cache stats:" in output
        for counter in ("intern_hits:", "sig_cache_hits:", "table_reuse:",
                        "canonical_hits:"):
            assert counter in output

    def test_stats_off_by_default(self):
        status, output = run_cli("demo", "quickstart")
        assert status == 0
        assert "cache stats:" not in output


class TestSaveAndReuse:
    def test_save_query_negotiate(self, tmp_path):
        world_path = tmp_path / "world.json"
        status, output = run_cli("save-demo", "scenario1", str(world_path))
        assert status == 0 and world_path.exists()

        status, output = run_cli("query", str(world_path),
                                 "--peer", "E-Learn", "--goal", "course(C)")
        assert status == 0
        assert "course(spanish205)" in output

        status, output = run_cli(
            "negotiate", str(world_path),
            "--requester", "Alice", "--provider", "E-Learn",
            "--goal", 'discountEnroll(Course, "Alice")')
        assert status == 0
        assert "Course = spanish205" in output

    def test_query_failure_exit_code(self, tmp_path):
        world_path = tmp_path / "world.json"
        run_cli("save-demo", "quickstart", str(world_path))
        status, output = run_cli("query", str(world_path),
                                 "--peer", "Server", "--goal", "ghost(X)",
                                 "--local-only")
        assert status == 1 and "no." in output

    def test_unknown_peer_usage_error(self, tmp_path):
        world_path = tmp_path / "world.json"
        run_cli("save-demo", "quickstart", str(world_path))
        status, _ = run_cli("query", str(world_path),
                            "--peer", "Nobody", "--goal", "a(X)")
        assert status == 2

    def test_failed_negotiation_exit_code(self, tmp_path):
        world_path = tmp_path / "world.json"
        run_cli("save-demo", "quickstart", str(world_path))
        status, output = run_cli(
            "negotiate", str(world_path),
            "--requester", "Server", "--provider", "Client",
            "--goal", 'hello("Server")')
        assert status == 1
        assert "granted:  False" in output


class TestVersion:
    def test_version(self):
        status, output = run_cli("version")
        assert status == 0
        assert "1.0.0" in output


class TestLintCommand:
    def test_clean_program(self, tmp_path):
        source = tmp_path / "good.pt"
        source.write_text("p(X) <- q(X). q(1). p(X) $ true <-{true} p(X).\n"
                          "q(X) $ true <-{true} q(X).\n")
        status, output = run_cli("lint", str(source))
        assert status == 0
        assert "clean" in output or "P00" not in output

    def test_errors_fail_exit_code(self, tmp_path):
        source = tmp_path / "bad.pt"
        source.write_text("p(X, Y) <- q(X). q(1).")
        status, output = run_cli("lint", str(source))
        assert status == 1
        assert "P001" in output

    def test_quiet_hides_info(self, tmp_path):
        source = tmp_path / "private.pt"
        source.write_text("secret(1).")
        status, output = run_cli("lint", str(source), "--quiet")
        assert status == 0
        assert "P005" not in output

    def test_parse_error(self, tmp_path):
        source = tmp_path / "broken.pt"
        source.write_text("p(")
        status, _ = run_cli("lint", str(source))
        assert status == 1
