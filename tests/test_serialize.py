"""Persistence round-trip tests."""

import json

import pytest

from repro.datalog.parser import parse_goals, parse_literal, parse_rule
from repro.negotiation.strategies import negotiate
from repro.serialize import (
    SerializationError,
    credential_from_dict,
    credential_to_dict,
    keypair_from_dict,
    keypair_to_dict,
    load_world,
    peer_from_dict,
    peer_to_dict,
    public_key_from_dict,
    public_key_to_dict,
    save_world,
    world_from_dict,
    world_to_dict,
)
from repro.world import World

KEY_BITS = 512


def build_world():
    world = World(key_bits=KEY_BITS)
    world.add_peer("Server",
                   'hello(Requester) $ true <- '
                   'friend(Requester) @ "CA" @ Requester.')
    world.add_peer("Client",
                   'friend(X) @ Y $ true <-{true} friend(X) @ Y.')
    world.issuer("CA")
    world.distribute_keys()
    world.give_credentials("Client", 'friend("Client") signedBy ["CA"].')
    return world


class TestKeys:
    def test_public_round_trip(self, keys_for):
        keys = keys_for("Serial-A")
        data = public_key_to_dict(keys.public)
        assert public_key_from_dict(data) == keys.public

    def test_keypair_round_trip_signs_identically(self, keys_for):
        keys = keys_for("Serial-B")
        restored = keypair_from_dict(keypair_to_dict(keys, include_private=True))
        assert restored.sign(b"msg") == keys.sign(b"msg")

    def test_private_omitted_by_default(self, keys_for):
        data = keypair_to_dict(keys_for("Serial-C"), include_private=False)
        assert "private" not in data
        with pytest.raises(SerializationError):
            keypair_from_dict(data)

    def test_json_clean(self, keys_for):
        json.dumps(keypair_to_dict(keys_for("Serial-D"), include_private=True))


class TestCredentials:
    def test_round_trip_verifies(self, keys_for):
        from repro.credentials.credential import issue_credential, verify_credential
        from repro.crypto.keys import KeyRing

        keys = keys_for("SerialCA")
        credential = issue_credential(
            parse_rule('c(X) @ "SerialCA" <- signedBy ["SerialCA"] d(X).'), keys)
        restored = credential_from_dict(credential_to_dict(credential))
        assert restored == credential
        ring = KeyRing()
        ring.add(keys.public)
        verify_credential(restored, ring)

    def test_sticky_guard_survives(self, keys_for):
        from repro.credentials.credential import issue_credential
        from repro.policy.sticky import with_sticky_guard

        credential = with_sticky_guard(
            issue_credential(parse_rule('c(1) signedBy ["SerialCA"].'),
                             keys_for("SerialCA")),
            parse_goals("clearance(Requester)"))
        restored = credential_from_dict(credential_to_dict(credential))
        assert restored.sticky_guard == credential.sticky_guard

    def test_validity_window_survives(self, keys_for):
        from repro.credentials.credential import issue_credential

        credential = issue_credential(
            parse_rule('c(1) signedBy ["SerialCA"].'), keys_for("SerialCA"),
            not_before=10.0, not_after=20.0)
        restored = credential_from_dict(credential_to_dict(credential))
        assert (restored.not_before, restored.not_after) == (10.0, 20.0)

    def test_bad_rule_rejected(self):
        with pytest.raises(SerializationError):
            credential_from_dict({"rule": "not a rule", "signatures": [],
                                  "serial": "x"})


class TestPeers:
    def test_round_trip_program_and_wallet(self):
        world = build_world()
        client = world.peers["Client"]
        restored = peer_from_dict(peer_to_dict(client, include_private=True))
        assert restored.name == "Client"
        assert len(restored.kb) == len(client.kb)
        assert len(restored.credentials) == len(client.credentials)
        assert restored.keyring.principals() == client.keyring.principals()

    def test_options_survive(self):
        world = World(key_bits=KEY_BITS)
        peer = world.add_peer("Opt", max_answers=7, sticky_policies=True,
                              require_certified_answers=False)
        restored = peer_from_dict(peer_to_dict(peer, include_private=True))
        assert restored.max_answers == 7
        assert restored.sticky_policies
        assert not restored.require_certified_answers


class TestWorlds:
    def test_save_load_negotiates_identically(self, tmp_path):
        world = build_world()
        path = tmp_path / "world.json"
        save_world(world, path)
        restored = load_world(path)
        result = negotiate(restored.peers["Client"], "Server",
                           parse_literal('hello("Client")'))
        assert result.granted

    def test_version_checked(self):
        with pytest.raises(SerializationError):
            world_from_dict({"format_version": 99})

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{ not json")
        with pytest.raises(SerializationError):
            load_world(path)

    def test_public_snapshot_has_no_private_keys(self):
        world = build_world()
        data = world_to_dict(world, include_private=False)
        text = json.dumps(data)
        assert '"private"' not in text

    def test_issuers_survive(self, tmp_path):
        world = build_world()
        path = tmp_path / "world.json"
        save_world(world, path)
        restored = load_world(path)
        assert "CA" in restored.issuers
        # The restored issuer can still sign new credentials.
        credential = restored.credential('friend("Other") signedBy ["CA"].')
        assert credential.primary_issuer == "CA"
