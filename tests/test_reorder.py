"""Body-reordering optimisation tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.knowledge import KnowledgeBase
from repro.datalog.parser import parse_goals, parse_program, parse_rule
from repro.datalog.reorder import reorder_body, reorder_program, reorder_rule
from repro.datalog.sld import SLDEngine
from repro.errors import BuiltinError


class TestReorderRule:
    def test_builtin_deferred_until_bound(self):
        rule = parse_rule("cheap(C) <- P < 1000, price(C, P).")
        reordered = reorder_rule(rule)
        assert [g.predicate for g in reordered.body] == ["price", "<"]

    def test_bound_builtin_pulled_forward(self):
        rule = parse_rule("f(X) <- g(X, Y), X < 9, h(Y).")
        reordered = reorder_rule(rule)
        # X is head-bound, so the comparison can run before anything else.
        assert reordered.body[0].predicate == "<"

    def test_negation_waits_for_groundness(self):
        rule = parse_rule("ok(X) <- not revoked(Y), owner(X, Y).")
        reordered = reorder_rule(rule)
        assert [g.predicate for g in reordered.body] == ["owner", "revoked"]

    def test_most_bound_literal_first(self):
        rule = parse_rule("r(X) <- big(A, B, C), small(X).")
        reordered = reorder_rule(rule)
        # small/1 shares X with the head: 0 unbound vars vs big's 3.
        assert reordered.body[0].predicate == "small"

    def test_stable_when_already_good(self):
        rule = parse_rule("a(X) <- b(X), c(X).")
        assert reorder_rule(rule) is rule  # unchanged object

    def test_single_goal_untouched(self):
        rule = parse_rule("a(X) <- b(X).")
        assert reorder_rule(rule) is rule

    def test_permutation_preserved(self):
        rule = parse_rule("r(X) <- a(X), b(X, Y), Y < 3, not c(Y), d(Y, Z).")
        reordered = reorder_rule(rule)
        assert sorted(map(str, reordered.body)) == sorted(map(str, rule.body))

    def test_guard_and_context_untouched(self):
        rule = parse_rule("r(X) $ g(Requester) <-{true} b(X, Y), a(X).")
        reordered = reorder_rule(rule)
        assert reordered.guard == rule.guard
        assert reordered.rule_context == rule.rule_context

    def test_reorder_program(self):
        program = parse_program("a(X) <- P < 2, p(X, P). b(1).")
        reordered = reorder_program(program)
        assert reordered[0].body[0].predicate == "p"
        assert reordered[1] is program[1]


class TestEngineIntegration:
    FLOUNDERING = "cheap(C) <- P < 1000, price(C, P). price(a, 100). price(b, 5000)."

    def test_plain_engine_flounders(self):
        engine = SLDEngine(KnowledgeBase(parse_program(self.FLOUNDERING)))
        with pytest.raises(BuiltinError):
            engine.query(parse_goals("cheap(C)"))

    def test_reordering_engine_succeeds(self):
        engine = SLDEngine(KnowledgeBase(parse_program(self.FLOUNDERING)),
                           reorder_bodies=True)
        solutions = engine.query(parse_goals("cheap(C)"))
        assert [str(s.binding("C")) for s in solutions] == ["a"]

    def test_reordering_cuts_search(self):
        """Selective-goal-first reduces resolution steps on a bad ordering."""
        program = ("r(X) <- junk(A, B), key(X). "
                   + " ".join(f"junk({i}, {j})." for i in range(8) for j in range(8))
                   + " key(42).")
        plain = SLDEngine(KnowledgeBase(parse_program(program)))
        plain.query(parse_goals("r(X)"))
        tuned = SLDEngine(KnowledgeBase(parse_program(program)),
                          reorder_bodies=True)
        tuned.query(parse_goals("r(X)"))
        assert tuned.stats.resolutions < plain.stats.resolutions


@given(st.permutations(["p(X)", "q(X, Y)", "Y < 5", "not r(Y)"]))
@settings(max_examples=24, deadline=None)
def test_property_answers_invariant_under_input_order(goal_order):
    """Whatever the author's body order, the reordering engine computes the
    same answer set."""
    body = ", ".join(goal_order)
    program = (f"ans(X, Y) <- {body}. "
               "p(1). p(2). q(1, 3). q(2, 9). r(9).")
    engine = SLDEngine(KnowledgeBase(parse_program(program)),
                       reorder_bodies=True)
    solutions = engine.query(parse_goals("ans(X, Y)"))
    answers = {(str(s.binding("X")), str(s.binding("Y"))) for s in solutions}
    assert answers == {("1", "3")}
