"""Proof-explanation tests."""

import pytest

from repro.datalog.explain import explain, explain_solution, provenance
from repro.datalog.parser import parse_goals, parse_literal
from repro.world import World

KEY_BITS = 512


@pytest.fixture
def student_world():
    world = World(key_bits=KEY_BITS)
    holder = world.add_peer("Alice")
    world.issuer("UIUC")
    world.issuer("Registrar")
    world.distribute_keys()
    world.give_credentials("Alice", '''
        student(X) @ "UIUC" <- signedBy ["UIUC"] student(X) @ "Registrar".
        student("Alice") @ "Registrar" signedBy ["Registrar"].
    ''')
    return world, holder


class TestExplain:
    def test_local_rule_and_fact(self, engine_for):
        engine = engine_for("a(X) <- b(X). b(1).")
        solution = engine.query(parse_goals("a(X)"))[0]
        text = explain(solution.proofs[0])
        assert "derived by a local rule" in text
        assert "locally stated fact" in text

    def test_builtin(self, engine_for):
        engine = engine_for("ok(X) <- X < 10.")
        solution = engine.query(parse_goals("ok(5)"))[0]
        assert "checked by computation" in explain(solution.proofs[0])

    def test_negation(self, engine_for):
        engine = engine_for("good(X) <- base(X), not bad(X). base(1).")
        solution = engine.query(parse_goals("good(1)"))[0]
        assert "no proof of the positive statement" in explain(solution.proofs[0])

    def test_credential_chain(self, student_world):
        world, holder = student_world
        solution = holder.local_query(
            parse_literal('student("Alice") @ "UIUC"'), allow_remote=False)[0]
        text = explain(solution.proofs[0])
        assert "signed by UIUC" in text
        assert "signed by Registrar" in text
        assert "whose conditions hold" in text

    def test_remote_certified(self):
        world = World(key_bits=KEY_BITS)
        world.add_peer("Oracle", 'wisdom(42).\nwisdom(X) $ true <-{true} wisdom(X).')
        asker = world.add_peer("Asker")
        world.distribute_keys()
        solution = asker.local_query(parse_literal('wisdom(W) @ "Oracle"'),
                                     max_solutions=1)[0]
        text = explain(solution.proofs[0])
        assert "answered by peer 'Oracle'" in text
        assert "re-verified" in text

    def test_asserted_flagged_loudly(self):
        world = World(key_bits=KEY_BITS)
        world.add_peer("Oracle",
                       'claim(1) @ "Zeus".\nclaim(X) @ Y $ true <-{true} claim(X) @ Y.')
        asker = world.add_peer("Asker", require_certified_answers=False)
        world.issuer("Zeus")
        world.distribute_keys()
        solution = asker.local_query(
            parse_literal('claim(1) @ "Zeus" @ "Oracle"'), max_solutions=1)[0]
        assert "ASSERTED" in explain(solution.proofs[0])

    def test_explain_solution_title(self, engine_for):
        engine = engine_for("a(1).")
        solution = engine.query(parse_goals("a(1)"))[0]
        text = explain_solution(solution, title="Why a(1)?")
        assert text.startswith("Why a(1)?")


class TestProvenance:
    def test_credential_chain_provenance(self, student_world):
        world, holder = student_world
        solution = holder.local_query(
            parse_literal('student("Alice") @ "UIUC"'), allow_remote=False)[0]
        assert provenance(solution.proofs[0]) == ["UIUC", "Registrar"]

    def test_local_proof_has_empty_provenance(self, engine_for):
        engine = engine_for("a(X) <- b(X). b(1).")
        solution = engine.query(parse_goals("a(X)"))[0]
        assert provenance(solution.proofs[0]) == []

    def test_remote_answer_includes_peer(self):
        world = World(key_bits=KEY_BITS)
        world.add_peer("Oracle", 'wisdom(42).\nwisdom(X) $ true <-{true} wisdom(X).')
        asker = world.add_peer("Asker")
        world.distribute_keys()
        solution = asker.local_query(parse_literal('wisdom(W) @ "Oracle"'),
                                     max_solutions=1)[0]
        names = provenance(solution.proofs[0])
        assert "Oracle" in names
