"""World-builder tests."""

import pytest

from repro.errors import CredentialError
from repro.world import World

KEY_BITS = 512


class TestPrincipals:
    def test_issuer_keys_are_stable(self):
        world = World(key_bits=KEY_BITS)
        assert world.issuer("CA") is world.issuer("CA")

    def test_peer_keys_resolved_before_issuers(self):
        world = World(key_bits=KEY_BITS)
        peer = world.add_peer("Dual")
        assert world.keys_for("Dual") is peer.keys

    def test_keys_for_creates_issuer(self):
        world = World(key_bits=KEY_BITS)
        keys = world.keys_for("Fresh")
        assert "Fresh" in world.issuers and keys.principal == "Fresh"

    def test_add_peer_registers_on_transport(self):
        world = World(key_bits=KEY_BITS)
        peer = world.add_peer("P")
        assert world.transport.registry.get("P") is peer
        assert peer.transport is world.transport

    def test_peer_accessor(self):
        world = World(key_bits=KEY_BITS)
        peer = world.add_peer("P")
        assert world.peer("P") is peer

    def test_uncached_keys(self):
        first = World(key_bits=KEY_BITS, use_key_cache=False)
        second = World(key_bits=KEY_BITS, use_key_cache=False)
        assert first.issuer("NoCacheCA") is not second.issuer("NoCacheCA")


class TestKeyDistribution:
    def test_everyone_trusts_everyone(self):
        world = World(key_bits=KEY_BITS)
        a = world.add_peer("A")
        b = world.add_peer("B")
        world.issuer("CA")
        world.distribute_keys()
        for peer in (a, b):
            for principal in ("A", "B", "CA"):
                assert principal in peer.keyring

    def test_redistribution_is_idempotent(self):
        world = World(key_bits=KEY_BITS)
        world.add_peer("A")
        world.distribute_keys()
        world.distribute_keys()


class TestCredentialIssuance:
    def test_credential_from_text(self):
        world = World(key_bits=KEY_BITS)
        credential = world.credential('c("X") signedBy ["CA"].')
        assert credential.primary_issuer == "CA"

    def test_unsigned_rule_rejected(self):
        world = World(key_bits=KEY_BITS)
        with pytest.raises(CredentialError):
            world.credential("c(1).")

    def test_variable_signer_rejected(self):
        world = World(key_bits=KEY_BITS)
        with pytest.raises(CredentialError):
            world.credential("c(1) signedBy [Y].")

    def test_give_credentials_populates_wallet(self):
        world = World(key_bits=KEY_BITS)
        holder = world.add_peer("Holder")
        issued = world.give_credentials("Holder", '''
            a(1) signedBy ["CA"].
            b(2) signedBy ["CB"].
        ''')
        assert len(issued) == 2 and len(holder.credentials) == 2

    def test_give_credentials_with_validity(self):
        world = World(key_bits=KEY_BITS)
        credential = world.credential('c(1) signedBy ["CA"].',
                                      not_before=1.0, not_after=2.0)
        assert (credential.not_before, credential.not_after) == (1.0, 2.0)

    def test_peer_signed_credential(self):
        """A live peer can also act as an issuer."""
        world = World(key_bits=KEY_BITS)
        world.add_peer("Signer")
        credential = world.credential('says(hello) signedBy ["Signer"].')
        assert credential.primary_issuer == "Signer"


class TestMetrics:
    def test_reset_returns_previous(self):
        world = World(key_bits=KEY_BITS)
        world.add_peer("A", "x(1) <-{true} true.")
        world.add_peer("B")
        from repro.datalog.parser import parse_literal
        from repro.negotiation.strategies import negotiate

        negotiate(world.peer("B"), "A", parse_literal("x(1)"))
        previous = world.reset_metrics()
        assert previous.messages > 0
        assert world.stats.messages == 0
