#!/usr/bin/env python3
"""Quickstart: a minimal bilateral trust negotiation.

A server offers a resource to anyone who can prove, with a CA-signed
credential, that they are a friend; the client guards that credential with
a release policy of its own.  Run it:

    python examples/quickstart.py
"""

from repro import World, negotiate, parse_literal


def main() -> None:
    world = World(key_bits=512)

    # The server's PeerTrust program: the `$` rule is the access policy for
    # the resource; `@ "CA" @ Requester` means "ask the requester to supply
    # a CA-certified proof".
    world.add_peer("Server", """
        hello(Requester) $ true <-
            friend(Requester) @ "CA" @ Requester.
    """)

    # The client's program: its friend credential may be shown to anyone
    # ($ true); `<-{true}` makes the release policy itself public.
    client = world.add_peer("Client", """
        friend(X) @ Y $ true <-{true} friend(X) @ Y.
    """)

    # An issuer that signs credentials but answers no queries.
    world.issuer("CA")
    world.distribute_keys()

    # Hand the client its CA-signed credential.
    world.give_credentials("Client", 'friend("Client") signedBy ["CA"].')

    result = negotiate(client, "Server", parse_literal('hello("Client")'))

    print(f"granted: {result.granted}")
    print(f"messages exchanged: {world.stats.messages}"
          f" ({world.stats.bytes} bytes,"
          f" {world.stats.simulated_ms:.1f} simulated ms)")
    print("\nnegotiation transcript:")
    print(result.session.render_transcript())

    assert result.granted


if __name__ == "__main__":
    main()
