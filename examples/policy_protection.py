#!/usr/bin/env python3
"""Policy protection (UniPro, §2 "Sensitive policies" + §4.2).

Demonstrates three layers of protection:

1. the ``freebieEligible`` definition is private by default — the
   negotiation succeeds without it ever crossing the wire;
2. the definition is registered as a UniPro named policy whose *own* policy
   admits only proven employees of ELENA member companies;
3. once Bob obtains the definition, he pushes the needed credentials
   proactively with his enrollment request, shrinking the negotiation.

Run it:

    python examples/policy_protection.py
"""

from repro.datalog.parser import parse_goals, parse_literal
from repro.net.message import DisclosureMessage, PolicyRequestMessage
from repro.negotiation.strategies import parsimonious_negotiate
from repro.negotiation.session import next_session_id
from repro.scenarios.services import build_scenario2, run_free_enrollment


def main() -> None:
    print("1. Private rule stays home")
    print("-" * 60)
    scenario = build_scenario2(key_bits=512)
    result = run_free_enrollment(scenario)
    leaks = [e for e in result.session.transcript
             if "freebieEligible" in e.detail
             and e.kind in ("disclose", "receive", "answer")]
    print(f"   negotiation granted: {result.granted}; "
          f"definition leaks: {len(leaks)} (expected 0)")

    print("\n2. UniPro: the policy's own policy")
    print("-" * 60)
    scenario = build_scenario2(key_bits=512)
    scenario.elearn.unipro.register_from_kb(
        scenario.elearn.kb, "freebieEligible", 4,
        protection=parse_goals(
            'employee(Requester) @ Company @ Requester, '
            'member(Company) @ "ELENA" @ Requester'))

    request = PolicyRequestMessage(
        sender="Bob", receiver="E-Learn",
        session_id=next_session_id("unipro"), policy_name="freebieEligible")
    reply = scenario.elearn.handle(request)
    print(f"   Bob (IBM employee) requests the definition: granted={reply.granted}")
    for rule in reply.rules:
        print(f"     {rule}")

    stranger = scenario.world.add_peer("Stranger")
    scenario.world.distribute_keys()
    refused = scenario.elearn.handle(PolicyRequestMessage(
        sender="Stranger", receiver="E-Learn",
        session_id=next_session_id("unipro"), policy_name="freebieEligible"))
    print(f"   a stranger requests it: granted={refused.granted}")

    print("\n3. Credential pushing after dissemination")
    print("-" * 60)
    # Baseline: normal negotiation message count.
    scenario = build_scenario2(key_bits=512)
    scenario.world.reset_metrics()
    result = run_free_enrollment(scenario)
    baseline = scenario.world.stats.messages
    print(f"   without pushing: granted={result.granted}, "
          f"{baseline} messages")

    # Bob knows the definition now: he pushes the supporting credentials
    # together with a self-signed email assertion, then asks.
    scenario = build_scenario2(key_bits=512)
    scenario.world.reset_metrics()
    session_id = next_session_id("push")
    push = [c for c in scenario.bob.credentials.credentials()
            if c.rule.head.predicate in ("employee", "member")]
    push.append(scenario.bob.self_credential(
        parse_literal('email("Bob", "Bob@ibm.com")')))
    scenario.world.transport.send(DisclosureMessage(
        sender="Bob", receiver="E-Learn", session_id=session_id,
        credentials=tuple(push)))
    # Reuse the same session for the query so the pushed material counts.
    session = scenario.world.transport.sessions.get_or_create(session_id, "Bob")
    from repro.net.message import QueryMessage

    reply = scenario.world.transport.request(QueryMessage(
        sender="Bob", receiver="E-Learn", session_id=session_id,
        goal=parse_literal('enroll(cs101, "Bob", Company, Email, 0)')))
    pushed = scenario.world.stats.messages
    print(f"   with pushing:    granted={not reply.is_failure}, "
          f"{pushed} messages")
    print(f"   counter-queries avoided: {baseline - pushed} message(s) saved"
          if pushed < baseline else "   (no savings this run)")


if __name__ == "__main__":
    main()
