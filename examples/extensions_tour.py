#!/usr/bin/env python3
"""A tour of the §6 future-work extensions this reproduction implements.

1. Content-triggered policies — intensional resource protection ("all color
   printers on the third floor").
2. Multiparty negotiation — third-party release dependencies that deadlock
   every two-party strategy.
3. Autonomy analysis — which credentials/answers are load-bearing.
4. Behavioural leakage — what a counterpart learns from failure shapes.

Run it:

    python examples/extensions_tour.py
"""

from repro.datalog.parser import parse_literal
from repro.negotiation.analysis import (
    behaviour_leak_probe,
    critical_credentials,
)
from repro.negotiation.strategies import (
    eager_multiparty_negotiate,
    negotiate,
    parsimonious_negotiate,
)
from repro.policy.content import ContentPolicy, ContentPolicyRegistry
from repro.workloads.generator import (
    build_delegation_chain,
    build_third_party_endorsement,
)
from repro.world import World


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def content_triggered_demo():
    banner("1. Content-triggered policies (intensional resource sets)")
    world = World(key_bits=512)
    server = world.add_peer("PrintServer", """
        printer(p1). location(p1, floor3). colorCapable(p1).
        printer(p2). location(p2, floor3).
    """)
    carol = world.add_peer(
        "Carol", 'staffBadge(X) @ Y $ true <-{true} staffBadge(X) @ Y.')
    world.issuer("HR")
    world.distribute_keys()
    world.give_credentials("Carol", 'staffBadge("Carol") signedBy ["HR"].')

    registry = ContentPolicyRegistry()
    registry.add(ContentPolicy.parse(
        name="color-floor3", action="print", resource_var="R",
        selector="printer(R), location(R, floor3), colorCapable(R)",
        requirements='staffBadge(Requester) @ "HR" @ Requester'))
    registry.install(server)

    for printer in ("p1", "p2"):
        result = negotiate(carol, "PrintServer",
                           parse_literal(f'access(print, {printer}, "Carol")'))
        print(f"  print on {printer}: granted={result.granted}")

    server.kb.load("printer(p9). location(p9, floor3). colorCapable(p9).")
    result = negotiate(carol, "PrintServer",
                       parse_literal('access(print, p9, "Carol")'))
    print(f"  print on p9 (added later, no policy edit): granted={result.granted}")


def multiparty_demo():
    banner("2. Multiparty negotiation (third-party release dependency)")
    for label, run in [
        ("parsimonious 2-party", lambda w: parsimonious_negotiate(
            w.requester, "Server", w.goal)),
        ("eager multiparty   ", lambda w: eager_multiparty_negotiate(
            w.requester, "Server", w.goal, participants=["Endorser"])),
    ]:
        workload = build_third_party_endorsement(key_bits=512)
        result = run(workload)
        print(f"  {label}: granted={result.granted}")


def analysis_demo():
    banner("3. Autonomy analysis (which credentials are load-bearing?)")
    reports = critical_credentials(
        lambda: build_delegation_chain(3, key_bits=512))
    for report in reports:
        print(f"  {report.head:35s} critical={report.critical}")


def leakage_demo():
    banner("4. Behavioural information leakage (failure-shape analysis)")

    def cannot():
        workload = build_delegation_chain(2, key_bits=512)
        for credential in list(workload.requester.credentials.credentials()):
            workload.requester.credentials.remove(credential.serial)
        return workload

    def willnot_noisy():
        from repro.datalog.parser import parse_rule

        workload = build_delegation_chain(2, key_bits=512)
        workload.requester.kb.remove(
            parse_rule('member(X) @ Y $ true <-{true} member(X) @ Y.'))
        workload.requester.kb.load(
            'member(X) @ Y $ vip(Requester) @ "NoSuchCA" @ Requester '
            '<-{true} member(X) @ Y.')
        return workload

    report = behaviour_leak_probe(cannot, willnot_noisy, observer="Server")
    print(f"  server can distinguish the failures: {report.leaks}")
    print(f"  leak channels: {', '.join(report.leaking_channels)}")
    print(f"  observable sequences:")
    print(f"    cannot-derive:  {' '.join(report.cannot_events)}")
    print(f"    will-not-release: {' '.join(report.willnot_events)}")


if __name__ == "__main__":
    content_triggered_demo()
    multiparty_demo()
    analysis_demo()
    leakage_demo()
