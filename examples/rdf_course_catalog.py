#!/usr/bin/env python3
"""RDF-described resources behind PeerTrust policies (Edutella flow, §1/§6).

PeerTrust 1.0 "imports RDF metadata to represent policies for access to
resources".  This example loads an N-Triples course catalogue into a
provider peer's knowledge base, layers access policies over it, and
negotiates access.

Run it:

    python examples/rdf_course_catalog.py
"""

from repro import World, negotiate, parse_literal
from repro.rdf.mapping import facts_from_triples
from repro.rdf.ntriples import parse_ntriples

CATALOG = """
<http://elearn.example/course/cs101> <http://elearn.example/ns#price> "0"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://elearn.example/course/cs411> <http://elearn.example/ns#price> "1000"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://elearn.example/course/cs500> <http://elearn.example/ns#price> "5000"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://elearn.example/course/cs101> <http://elearn.example/ns#subject> "programming" .
<http://elearn.example/course/cs411> <http://elearn.example/ns#subject> "databases" .
<http://elearn.example/course/cs500> <http://elearn.example/ns#subject> "databases" .
"""

POLICIES = """
% Courses costing under 2000 are available to certified students, who are
% asked to prove their own status.
enroll(Course, Requester) $ true <-
    price(Course, P), P < 2000,
    student(Requester) @ "University" @ Requester.
"""


def main() -> None:
    triples = parse_ntriples(CATALOG)
    catalog_facts = facts_from_triples(triples, style="binary")
    print(f"imported {len(catalog_facts)} facts from "
          f"{len(triples)} RDF triples, e.g. {catalog_facts[0]}")

    world = World(key_bits=512)
    provider = world.add_peer("E-Learn", POLICIES)
    provider.kb.add_all(catalog_facts)
    student = world.add_peer(
        "Carla", 'student(X) @ Y $ true <-{true} student(X) @ Y.')
    world.issuer("University")
    world.distribute_keys()
    world.give_credentials("Carla", 'student("Carla") signedBy ["University"].')

    for course in ("cs101", "cs411", "cs500"):
        result = negotiate(student, "E-Learn",
                           parse_literal(f'enroll({course}, "Carla")'))
        price = next((str(f.head.args[1]) for f in catalog_facts
                      if f.head.predicate == "price"
                      and str(f.head.args[0]) == course), "?")
        print(f"  enroll({course}) at price {price}: granted={result.granted}")

    # The catalogue round-trips back to RDF.
    from repro.rdf.mapping import triples_from_facts
    from repro.rdf.ntriples import serialize_ntriples

    exported = triples_from_facts(catalog_facts)
    print(f"\nre-exported {len(exported)} triples; first line:")
    print(" ", serialize_ntriples(exported).splitlines()[0])


if __name__ == "__main__":
    main()
