#!/usr/bin/env python3
"""Scenario 1 (paper §4.1): Alice negotiates with E-Learn Associates.

Reproduces the paper's two §4.1/§3.1 stories end to end:

1. **Discounted enrollment** — Alice proves she is a UIUC student (via the
   registrar-signed ID plus the UIUC delegation rule), which makes her an
   ELENA preferred customer; she only releases the credentials after
   E-Learn proves Better Business Bureau membership.
2. **Free Spanish course for police officers** — Alice's CSP-signed badge,
   released under the same BBB guard.

Run it:

    python examples/scenario1_elearn.py
"""

from repro.negotiation.proof import CertifiedProof, verify_proof
from repro.datalog.parser import parse_literal
from repro.scenarios.elearn import (
    build_scenario1,
    run_discount_negotiation,
    run_free_police_enrollment,
)


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("Discounted enrollment (ELENA preferred customer)")
    scenario = build_scenario1(key_bits=512)
    result = run_discount_negotiation(scenario)
    print(f"granted: {result.granted}")
    print(f"course:  {result.binding('Course')}")
    print("\ntranscript:")
    print(result.session.render_transcript())

    # E-Learn can package what it received as an independently verifiable
    # certified proof of Alice's student status (paper §6).
    received = scenario.world.transport.sessions.get(
        result.session.id).received_for("E-Learn")
    package = CertifiedProof(
        parse_literal('student("Alice") @ "UIUC"'),
        tuple(c for c in received.credentials()
              if c.rule.head.predicate == "student"),
        assembled_by="E-Learn")
    verify_proof(package, scenario.elearn.keyring)
    print(f"\ncertified proof of {package.goal} verified "
          f"({len(package.credentials)} credential(s))")

    banner("Free Spanish course (police badge, BBB-gated release)")
    scenario = build_scenario1(key_bits=512)
    result = run_free_police_enrollment(scenario)
    print(f"granted: {result.granted} for course {result.binding('Course')}")
    print("\ntranscript:")
    print(result.session.render_transcript())

    banner("Counterfactual: a stranger cannot ask about Alice's discount")
    scenario = build_scenario1(key_bits=512)
    mallory = scenario.world.add_peer("Mallory")
    scenario.world.distribute_keys()
    from repro.negotiation.strategies import negotiate

    denied = negotiate(mallory, "E-Learn",
                       parse_literal('discountEnroll(Course, "Alice")'))
    print(f"Mallory asking about Alice: granted={denied.granted} "
          f"({denied.failure_reason})")


if __name__ == "__main__":
    main()
