#!/usr/bin/env python3
"""Eager vs parsimonious negotiation strategies (paper §5, after Yu et al.).

Sweeps alternating release-dependency chains and prints the classic
trade-off: the parsimonious strategy sends more messages but discloses the
minimum; the eager strategy converges in few rounds by pushing everything
its release policies allow.  On deadlocked (cyclic) policies both must
terminate with failure — no safe disclosure sequence exists.

Run it:

    python examples/strategy_comparison.py
"""

from repro.bench.reporting import print_table
from repro.workloads.generator import (
    build_alternating_chain,
    build_cyclic_release,
    build_random_bilateral,
)
from repro.workloads.metrics import measure_negotiation


def main() -> None:
    rows = []
    for rounds in (1, 2, 4, 6, 8):
        for strategy in ("parsimonious", "eager"):
            workload = build_alternating_chain(rounds, key_bits=512)
            result, report = measure_negotiation(workload, strategy)
            rows.append({
                "chain depth": rounds,
                "strategy": strategy,
                "granted": result.granted,
                "messages": report.messages,
                "bytes": report.bytes,
                "disclosures": report.disclosures,
                "queries": report.queries,
            })
    print_table(rows, title="Alternating release chains: eager vs parsimonious")

    rows = []
    for strategy in ("parsimonious", "eager"):
        workload = build_cyclic_release(key_bits=512)
        result, report = measure_negotiation(workload, strategy)
        rows.append({
            "strategy": strategy,
            "granted": result.granted,
            "messages": report.messages,
            "loops detected": report.loops_detected,
        })
    print_table(rows, title="Deadlocked (cyclic) policies: both must fail, terminating")

    rows = []
    agreements = 0
    trials = 10
    for seed in range(trials):
        outcome = {}
        for strategy in ("parsimonious", "eager"):
            workload = build_random_bilateral(seed, key_bits=512)
            result, report = measure_negotiation(workload, strategy)
            outcome[strategy] = result.granted
        agreements += outcome["parsimonious"] == outcome["eager"]
    print(f"\nstrategy interoperability on {trials} random workloads: "
          f"{agreements}/{trials} agree on the outcome")


if __name__ == "__main__":
    main()
