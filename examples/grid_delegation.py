#!/usr/bin/env python3
"""Grid scenario: delegated negotiation and delegation chains.

Shows the two mechanisms the paper sketches beyond the e-learning world:

- Bob's handheld forwards negotiation to his trusted home machine, which
  holds all credentials (the §4.2 closing paragraph);
- the VO membership credential sits behind a registrar delegation chain of
  configurable length — we sweep it and watch the certified proof grow.

Run it:

    python examples/grid_delegation.py
"""

from repro.scenarios.grid import build_grid_scenario, run_cluster_access


def main() -> None:
    print("Delegated negotiation (handheld -> home):")
    scenario = build_grid_scenario(chain_length=2, key_bits=512)
    result = run_cluster_access(scenario)
    print(f"  cluster access granted: {result.granted}")
    print(f"  handheld credential count: {len(scenario.handheld.credentials)}"
          " (private material stays home)")
    print()
    print(result.session.render_transcript())

    print("\nDelegation-chain sweep (proof size grows with the chain):")
    print(f"  {'chain':>5} | {'granted':>7} | {'messages':>8} | {'bytes':>7}")
    for length in (1, 2, 4, 8, 12):
        scenario = build_grid_scenario(chain_length=length, key_bits=512)
        scenario.world.reset_metrics()
        result = run_cluster_access(scenario)
        stats = scenario.world.stats
        print(f"  {length:>5} | {str(result.granted):>7} | "
              f"{stats.messages:>8} | {stats.bytes:>7}")


if __name__ == "__main__":
    main()
