#!/usr/bin/env python3
"""Scenario 2 (paper §4.2): Bob signs up for learning services.

Runs every variant the paper discusses:

- free-course enrollment for employees of ELENA member companies;
- pay-per-use purchase with the company VISA card, including the policy27
  dance (card shown only to ELENA members who are VISA-authorised
  merchants) and the live revocation check with the VISA peer;
- the counterfactual where IBM is not an ELENA member;
- the authority-broker variant of policy49;
- a revoked card.

Run it:

    python examples/scenario2_learning_services.py
"""

from repro.scenarios.services import (
    build_scenario2,
    revoke_ibm_card,
    run_free_enrollment,
    run_paid_enrollment,
)


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("Free course for an IBM (ELENA member) employee")
    scenario = build_scenario2(key_bits=512)
    result = run_free_enrollment(scenario)
    print(f"granted: {result.granted} "
          f"(company={result.binding('Company')}, email={result.binding('Email')})")
    print(result.session.render_transcript())

    banner("Pay-per-use course: authorisation + VISA card + approval")
    scenario = build_scenario2(key_bits=512)
    result = run_paid_enrollment(scenario)
    print(f"granted: {result.granted} at price {result.binding('Price')}")
    print(result.session.render_transcript())

    banner("Policy protection: freebieEligible never crossed the wire")
    leaked = [e for e in result.session.transcript
              if "freebieEligible" in e.detail
              and e.kind in ("disclose", "receive", "answer")]
    print(f"events leaking the private rule: {len(leaked)} (expected 0)")

    banner("Counterfactual: IBM not in ELENA")
    scenario = build_scenario2(key_bits=512, ibm_in_elena=False)
    free = run_free_enrollment(scenario)
    paid = run_paid_enrollment(scenario)
    print(f"free course granted: {free.granted}  (paper: must fail)")
    print(f"paid course granted: {paid.granted}  (paper: must succeed)")

    banner("Revoked company card")
    scenario = build_scenario2(key_bits=512)
    revoke_ibm_card(scenario)
    paid = run_paid_enrollment(scenario)
    free = run_free_enrollment(scenario)
    print(f"paid course granted: {paid.granted}  (revocation must block it)")
    print(f"free course granted: {free.granted}  (unaffected)")

    banner("Brokered authority lookup (authority(purchaseApproved, A) @ myBroker)")
    scenario = build_scenario2(key_bits=512, use_broker=True)
    result = run_paid_enrollment(scenario)
    broker_queries = [e for e in result.session.events("query")
                      if e.counterpart == "myBroker"]
    print(f"granted: {result.granted}, broker consulted "
          f"{len(broker_queries)} time(s)")


if __name__ == "__main__":
    main()
