#!/usr/bin/env python3
"""The full ELENA learning network — every substrate composed (paper §1).

Three course providers with RDF catalogues and different policies, a
university delegation chain, the ELENA consortium, an authority broker, a
VISA billing authority, and a super-peer topology.  Two learners discover
providers through the routing index, negotiate enrollment, and collect
repeat-access tokens.

Run it:

    python examples/elena_network.py
"""

from repro.bench.reporting import print_table
from repro.scenarios.elena_network import build_elena_network, enroll_everywhere

ALICE_COURSES = {"E-Learn": "spanish205", "EduSoft": "python101",
                 "UniCourses": "logic300"}
BOB_COURSES = {"E-Learn": "cs411", "EduSoft": "ml500",
               "UniCourses": "logic300"}


def main() -> None:
    network = build_elena_network()
    print("Providers discovered via super-peer routing index:",
          ", ".join(network.superpeers.locate("enroll")))
    print("Billing authority via broker:",
          ", ".join(network.broker.authorities_for("purchaseApproved")))

    rows = []
    for learner, courses in ((network.alice, ALICE_COURSES),
                             (network.bob, BOB_COURSES)):
        network.world.reset_metrics()
        network.superpeers.reset_hop_log()
        for outcome in enroll_everywhere(network, learner, courses):
            rows.append({
                "learner": learner.name,
                "provider": outcome.provider,
                "course": outcome.course,
                "granted": outcome.granted,
                "token": outcome.token is not None,
            })
        stats = network.world.stats
        rows.append({
            "learner": f"({learner.name}: {stats.messages} msgs, "
                       f"{network.superpeers.total_hops()} hops, "
                       f"{stats.simulated_ms:.1f} sim ms)",
        })
    print_table(rows, title="Enrollment outcomes across the network")

    print("\nWhy can Alice enroll at E-Learn? (proof provenance)")
    from repro.datalog.explain import explain, provenance
    from repro.datalog.parser import parse_literal

    solution = network.alice.local_query(
        parse_literal('student("Alice") @ "UIUC"'), allow_remote=False)[0]
    print(explain(solution.proofs[0], indent=2))
    print("  trust base:", ", ".join(provenance(solution.proofs[0])))


if __name__ == "__main__":
    main()
